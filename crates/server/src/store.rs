//! The crash-durable session store: journaled sessions that survive
//! `kill -9` and resume byte-identical.
//!
//! When the server runs with a state directory, every compress/decompress
//! request becomes a **session** on disk before any work is acknowledged:
//!
//! ```text
//! <state-dir>/sessions/s<token:016x>/
//!     input.bin   the request payload, synced before the journal
//!     journal     CRC-protected record of op + tenant + params + content CRC
//!     out.part    the staged container (per-frame durable flush)
//!     out         the finished container (promoted by rename + dir fsync)
//! ```
//!
//! The write path is ordered so every crash point has a recovery story
//! (DESIGN §14): input before journal, journal before the session is
//! announced ([`crate::proto::Response::Session`]), every frame synced
//! before the next is written, the finished container synced before the
//! rename, the rename made durable by fsyncing the directory. The three
//! registered crash sites ([`lzfpga_faults::registry`]) sit exactly at
//! those edges so the `crashstorm` drill can kill the process at each one.
//!
//! On startup [`SessionStore::recover`] walks the state directory: a
//! session whose journal fails verification is garbage-collected; a valid
//! one is re-admitted against its tenant's quota (so recovered work is
//! never free) and parked until [`Request::Resume`] claims it or the
//! orphan TTL sweeps it. Recovery re-verifies the journaled input CRC and
//! the staged prefix ([`scan_partial`]) before serving a single byte —
//! a damaged session is a typed [`RejectCode::Unresumable`], never wrong
//! bytes.
//!
//! [`Request::Resume`]: crate::proto::Request::Resume

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use lzfpga_container::{scan_partial, FrameConfig, FrameWriter};
use lzfpga_deflate::crc32::crc32;
use lzfpga_faults::registry::{
    SERVER_FRAME_DURABLE, SERVER_JOURNAL_APPEND, SERVER_SESSION_PROMOTE,
};
use lzfpga_faults::{Failpoints, InjectedFault};
use lzfpga_lzss::LzssParams;

use crate::jobs::{decompress_job, JobFail, JobLedger, RequestCtl};
use crate::proto::RejectCode;
use crate::quota::{Admission, Charge};

const JOURNAL_MAGIC: [u8; 4] = *b"LZSJ";
const JOURNAL_VERSION: u16 = 1;
const JOURNAL_FILE: &str = "journal";
const INPUT_FILE: &str = "input.bin";
const PART_FILE: &str = "out.part";
const OUT_FILE: &str = "out";

/// Open a directory and fsync it, making a just-created/renamed/removed
/// entry durable. Renaming a file is not crash-durable until its parent
/// directory is synced — the rename-durability half of this PR.
///
/// # Errors
/// The underlying open/sync failure.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// What kind of work a durable session journals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// An LZFC compress request (frames staged through `out.part`).
    Compress,
    /// A strict decompress request (recomputed from `input.bin` on
    /// resume — decoding is deterministic, so nothing is staged).
    Decompress,
}

impl SessionOp {
    fn as_u8(self) -> u8 {
        match self {
            SessionOp::Compress => 1,
            SessionOp::Decompress => 2,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(SessionOp::Compress),
            2 => Some(SessionOp::Decompress),
            _ => None,
        }
    }
}

/// The journal record written once per session, before the session token
/// is announced to the client. CRC-protected; a record that fails any
/// check is treated as if the session never existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    /// The durable session token (also encodes the directory name).
    pub token: u64,
    /// What the session does.
    pub op: SessionOp,
    /// The tenant the session bills against (re-admitted on recovery).
    pub tenant: String,
    /// Frame size the compress op was admitted with.
    pub frame_bytes: u32,
    /// Exact byte length of `input.bin`.
    pub content_len: u64,
    /// CRC-32 of `input.bin`, re-verified before resume serves anything.
    pub content_crc: u32,
    /// The decompress op's declared result budget.
    pub max_result: u64,
}

impl Journal {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(48 + self.tenant.len());
        p.extend_from_slice(&JOURNAL_MAGIC);
        p.extend_from_slice(&JOURNAL_VERSION.to_be_bytes());
        p.push(self.op.as_u8());
        p.push(0); // reserved
        p.extend_from_slice(&self.token.to_be_bytes());
        p.extend_from_slice(&self.frame_bytes.to_be_bytes());
        p.extend_from_slice(&self.content_len.to_be_bytes());
        p.extend_from_slice(&self.content_crc.to_be_bytes());
        p.extend_from_slice(&self.max_result.to_be_bytes());
        let tenant = self.tenant.as_bytes();
        let tlen = tenant.len().min(u16::MAX as usize);
        p.extend_from_slice(&(tlen as u16).to_be_bytes());
        p.extend_from_slice(&tenant[..tlen]);
        let crc = crc32(&p);
        p.extend_from_slice(&crc.to_be_bytes());
        p
    }

    fn decode(bytes: &[u8]) -> Result<Journal, &'static str> {
        // magic(4) ver(2) op(1) rsv(1) token(8) fb(4) len(8) crc(4)
        // max_result(8) tlen(2) tenant(..) crc(4)
        const FIXED: usize = 4 + 2 + 1 + 1 + 8 + 4 + 8 + 4 + 8 + 2;
        if bytes.len() < FIXED + 4 {
            return Err("journal record truncated");
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_be_bytes(tail.try_into().expect("4 bytes"));
        if crc32(body) != stored {
            return Err("journal CRC mismatch");
        }
        if body[0..4] != JOURNAL_MAGIC {
            return Err("bad journal magic");
        }
        if u16::from_be_bytes([body[4], body[5]]) != JOURNAL_VERSION {
            return Err("unknown journal version");
        }
        let op = SessionOp::from_u8(body[6]).ok_or("unknown journal op")?;
        let u64be = |at: usize| u64::from_be_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        let u32be = |at: usize| u32::from_be_bytes(body[at..at + 4].try_into().expect("4 bytes"));
        let token = u64be(8);
        let frame_bytes = u32be(16);
        let content_len = u64be(20);
        let content_crc = u32be(28);
        let max_result = u64be(32);
        let tlen = u16::from_be_bytes([body[40], body[41]]) as usize;
        if body.len() != FIXED + tlen {
            return Err("journal length mismatch");
        }
        let tenant = std::str::from_utf8(&body[42..42 + tlen])
            .map_err(|_| "journal tenant is not UTF-8")?
            .to_string();
        if tenant.is_empty() {
            return Err("journal tenant is empty");
        }
        Ok(Journal { token, op, tenant, frame_bytes, content_len, content_crc, max_result })
    }
}

/// The worst-case admission charge a recovered session re-acquires —
/// the same formula the live request path charges, so recovered work is
/// accounted exactly like fresh work.
pub fn recovery_cost(journal: &Journal) -> u64 {
    match journal.op {
        SessionOp::Compress => journal.content_len.saturating_mul(2).saturating_add(16_384),
        SessionOp::Decompress => journal.content_len.saturating_add(journal.max_result),
    }
}

/// A crashed session the startup scan salvaged: journal verified, quota
/// re-admitted, waiting for [`crate::proto::Request::Resume`] to claim it
/// (or the orphan TTL to sweep it).
#[derive(Debug)]
pub struct RecoveredSession {
    /// The verified journal record.
    pub journal: Journal,
    /// The session directory on disk.
    pub dir: PathBuf,
    /// Held, never read: the re-admitted quota charge releases when the
    /// session is claimed-and-finished, swept, or the store drops.
    _charge: Option<Charge>,
    since: Instant,
}

/// What the startup scan found in the state directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sessions with a verified journal, parked for resume.
    pub recovered: usize,
    /// Sessions garbage-collected because their journal failed
    /// verification (torn, corrupt, or duplicated).
    pub unresumable: usize,
    /// Verified sessions garbage-collected because their tenant's quota
    /// refused re-admission.
    pub refused: usize,
}

/// The per-server store of durable sessions under one state directory.
#[derive(Debug)]
pub struct SessionStore {
    sessions_dir: PathBuf,
    next: AtomicU64,
    recovered: Mutex<HashMap<u64, RecoveredSession>>,
}

impl SessionStore {
    /// Open (creating if needed) the store rooted at `state_dir`.
    ///
    /// # Errors
    /// Filesystem errors creating the layout.
    pub fn open(state_dir: &Path) -> io::Result<SessionStore> {
        let sessions_dir = state_dir.join("sessions");
        fs::create_dir_all(&sessions_dir)?;
        // Tokens only need to be unique per store, including across the
        // restarts the whole feature exists for — seed from the clock and
        // pid, not a counter a restarted process would repeat.
        let seed =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(1)
                ^ (u64::from(std::process::id()) << 48);
        Ok(SessionStore {
            sessions_dir,
            next: AtomicU64::new(seed | 1),
            recovered: Mutex::new(HashMap::new()),
        })
    }

    fn dir_for(&self, token: u64) -> PathBuf {
        self.sessions_dir.join(format!("s{token:016x}"))
    }

    /// Journal a new durable session: write and sync `input.bin`, then the
    /// CRC-protected journal record, then make both directory entries
    /// durable. Only after this returns may the session token be announced.
    ///
    /// # Errors
    /// Filesystem errors, or the injected error of an armed
    /// `server.journal.append` failpoint. On error the half-built session
    /// directory is removed.
    pub fn begin(
        &self,
        op: SessionOp,
        tenant: &str,
        frame_bytes: u32,
        max_result: u64,
        data: &[u8],
        faults: &dyn Failpoints,
    ) -> io::Result<(u64, PathBuf)> {
        let (token, dir) = loop {
            let token = self.next.fetch_add(1, Ordering::Relaxed);
            let dir = self.dir_for(token);
            match fs::create_dir(&dir) {
                Ok(()) => break (token, dir),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        };
        let result = (|| {
            let mut input = File::create(dir.join(INPUT_FILE))?;
            input.write_all(data)?;
            input.sync_all()?;
            let journal = Journal {
                token,
                op,
                tenant: tenant.to_string(),
                frame_bytes,
                content_len: data.len() as u64,
                content_crc: crc32(data),
                max_result,
            };
            let mut jf = File::create(dir.join(JOURNAL_FILE))?;
            jf.write_all(&journal.encode())?;
            jf.sync_all()?;
            // Crash site: journal written and synced, directory entries
            // not yet durable. A power cut here may lose the whole
            // session — the client holds no token yet, so nothing is
            // promised.
            if faults.check(SERVER_JOURNAL_APPEND) {
                return Err(io::Error::other(InjectedFault { site: SERVER_JOURNAL_APPEND }));
            }
            fsync_dir(&dir)?;
            fsync_dir(&self.sessions_dir)?;
            Ok(())
        })();
        match result {
            Ok(()) => Ok((token, dir)),
            Err(e) => {
                let _ = fs::remove_dir_all(&dir);
                Err(e)
            }
        }
    }

    /// Remove a finished (fully delivered) or aborted session's directory.
    pub fn finish(&self, token: u64) {
        let dir = self.dir_for(token);
        if fs::remove_dir_all(&dir).is_ok() {
            let _ = fsync_dir(&self.sessions_dir);
        }
    }

    /// Scan the state directory after a restart: verify every journal,
    /// re-admit survivors against their tenant's quota, and
    /// garbage-collect everything else. No leaked admitted bytes: every
    /// parked session holds a [`Charge`] that drops when it is claimed,
    /// swept, or the process exits.
    pub fn recover(&self, admission: &Arc<Admission>) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Ok(entries) = fs::read_dir(&self.sessions_dir) else {
            return report;
        };
        let mut removed_any = false;
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.is_dir() {
                continue;
            }
            let journal = fs::read(dir.join(JOURNAL_FILE))
                .map_err(|_| "journal unreadable")
                .and_then(|bytes| Journal::decode(&bytes));
            let journal = match journal {
                Ok(j) if self.dir_for(j.token) == dir => j,
                // Corrupt, torn, or moved: the session never becomes
                // claimable, so its bytes can never be served wrong.
                _ => {
                    let _ = fs::remove_dir_all(&dir);
                    removed_any = true;
                    report.unresumable += 1;
                    continue;
                }
            };
            let mut parked = self.recovered.lock().expect("session store lock");
            if parked.contains_key(&journal.token) {
                let _ = fs::remove_dir_all(&dir);
                removed_any = true;
                report.unresumable += 1;
                continue;
            }
            match admission.admit_request(&journal.tenant, recovery_cost(&journal)) {
                Ok(charge) => {
                    parked.insert(
                        journal.token,
                        RecoveredSession {
                            journal,
                            dir,
                            _charge: Some(charge),
                            since: Instant::now(),
                        },
                    );
                    report.recovered += 1;
                }
                Err(_) => {
                    drop(parked);
                    let _ = fs::remove_dir_all(&dir);
                    removed_any = true;
                    report.refused += 1;
                }
            }
        }
        if removed_any {
            let _ = fsync_dir(&self.sessions_dir);
        }
        report
    }

    /// Claim a parked session for `tenant`, removing it from the parked
    /// set. The returned session carries its re-admitted [`Charge`]; the
    /// resume job holds it until the work finishes.
    ///
    /// # Errors
    /// [`RejectCode::Unresumable`] for unknown/expired tokens or a tenant
    /// mismatch (the session stays parked for its real owner).
    pub fn claim(&self, token: u64, tenant: &str) -> Result<RecoveredSession, JobFail> {
        let mut parked = self.recovered.lock().expect("session store lock");
        match parked.get(&token) {
            None => Err(JobFail::new(RejectCode::Unresumable, "unknown or expired session token")),
            Some(rec) if rec.journal.tenant != tenant => Err(JobFail::new(
                RejectCode::Unresumable,
                "session token belongs to a different tenant",
            )),
            Some(_) => Ok(parked.remove(&token).expect("checked present")),
        }
    }

    /// Garbage-collect parked sessions older than `ttl`: remove their
    /// directories and release their quota charges. Returns how many were
    /// swept.
    pub fn sweep_orphans(&self, ttl: Duration) -> usize {
        let expired: Vec<RecoveredSession> = {
            let mut parked = self.recovered.lock().expect("session store lock");
            let tokens: Vec<u64> = parked
                .iter()
                .filter(|(_, rec)| rec.since.elapsed() >= ttl)
                .map(|(&t, _)| t)
                .collect();
            tokens.into_iter().filter_map(|t| parked.remove(&t)).collect()
        };
        let swept = expired.len();
        for rec in expired {
            let _ = fs::remove_dir_all(&rec.dir);
            // rec.charge drops here, returning the tenant's bytes.
        }
        if swept > 0 {
            let _ = fsync_dir(&self.sessions_dir);
        }
        swept
    }

    /// Parked (recovered, unclaimed) session count.
    pub fn pending(&self) -> usize {
        self.recovered.lock().expect("session store lock").len()
    }

    /// Live session directories on disk (leak assertions in the drills).
    pub fn session_dirs(&self) -> usize {
        fs::read_dir(&self.sessions_dir)
            .map(|rd| rd.flatten().filter(|e| e.path().is_dir()).count())
            .unwrap_or(0)
    }
}

/// The staged container sink: every flush is a durable checkpoint
/// (`sync_data`), and a copy of the appended bytes is kept so the served
/// response needs no re-read of the file. `FrameWriter` flushes after
/// every emitted frame, which makes each frame a crash-consistent unit.
struct DurableSink<'a> {
    file: File,
    appended: Vec<u8>,
    faults: &'a dyn Failpoints,
}

impl Write for DurableSink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write_all(buf)?;
        self.appended.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        // Crash site: the frame's bytes are durable; everything after the
        // last completed flush is legitimately lost and re-compressed on
        // resume.
        if self.faults.check(SERVER_FRAME_DURABLE) {
            return Err(io::Error::other(InjectedFault { site: SERVER_FRAME_DURABLE }));
        }
        Ok(())
    }
}

fn io_fail(e: io::Error) -> JobFail {
    JobFail::new(RejectCode::Internal, format!("durable session io: {e}"))
}

fn unresumable(detail: impl Into<String>) -> JobFail {
    JobFail::new(RejectCode::Unresumable, detail.into())
}

fn frame_config(frame_bytes: u32) -> FrameConfig {
    FrameConfig { frame_bytes: frame_bytes as usize, ..FrameConfig::default() }
}

/// Sync the finished container, cross the promote crash site, rename
/// `out.part` → `out`, and fsync the directory so the rename survives
/// power loss.
fn promote(dir: &Path, file: &File, faults: &dyn Failpoints) -> io::Result<()> {
    file.sync_all()?;
    // Crash site: the complete container is durable under its staging
    // name; only the rename can be lost, and resume re-plays it.
    if faults.check(SERVER_SESSION_PROMOTE) {
        return Err(io::Error::other(InjectedFault { site: SERVER_SESSION_PROMOTE }));
    }
    fs::rename(dir.join(PART_FILE), dir.join(OUT_FILE))?;
    fsync_dir(dir)
}

/// Compress `data` into the session's staged container with per-frame
/// durable flushes, then promote it. Returns the full container bytes —
/// byte-identical to [`crate::jobs::compress_job`] for the same input and
/// frame size, because both route through the shared codec decision.
///
/// # Errors
/// Typed cancellation stops, filesystem failures as
/// [`RejectCode::Internal`], or injected faults at the durable-flush and
/// promote crash sites.
pub fn durable_compress(
    dir: &Path,
    data: &[u8],
    frame_bytes: u32,
    params: LzssParams,
    ctl: &RequestCtl,
    faults: &dyn Failpoints,
    ledger: &mut JobLedger,
) -> Result<Vec<u8>, JobFail> {
    let file = File::create(dir.join(PART_FILE)).map_err(io_fail)?;
    let sink = DurableSink { file, appended: Vec::new(), faults };
    let mut w = FrameWriter::new(sink, frame_config(frame_bytes), params)
        .map_err(|e| JobFail::new(RejectCode::Internal, e.to_string()))?;
    for chunk in data.chunks(frame_bytes as usize) {
        ctl.checkpoint()?;
        w.write_all(chunk).map_err(io_fail)?;
    }
    ctl.checkpoint()?;
    let (sink, summary) = w.finish().map_err(io_fail)?;
    ledger.frames += u64::from(summary.frames);
    promote(dir, &sink.file, faults).map_err(io_fail)?;
    Ok(sink.appended)
}

fn read_verified_input(rec: &RecoveredSession) -> Result<Vec<u8>, JobFail> {
    let input = fs::read(rec.dir.join(INPUT_FILE))
        .map_err(|_| unresumable("journaled session input is missing"))?;
    if input.len() as u64 != rec.journal.content_len || crc32(&input) != rec.journal.content_crc {
        return Err(unresumable("journaled session input failed CRC verification"));
    }
    Ok(input)
}

/// Re-produce a claimed session's full result after a crash, continuing
/// from whatever durable prefix survived. The output is byte-identical to
/// the uninterrupted run; anything that cannot be proven consistent with
/// the journal is a typed [`RejectCode::Unresumable`], never wrong bytes.
///
/// # Errors
/// [`RejectCode::Unresumable`] on any verification failure, plus the same
/// errors the fresh job bodies can raise.
pub fn recover_session(
    rec: &RecoveredSession,
    params: LzssParams,
    ctl: &RequestCtl,
    faults: &dyn Failpoints,
    ledger: &mut JobLedger,
) -> Result<Vec<u8>, JobFail> {
    let input = read_verified_input(rec)?;
    match rec.journal.op {
        SessionOp::Decompress => decompress_job(&input, rec.journal.max_result, ctl, ledger),
        SessionOp::Compress => recover_compress(rec, &input, params, ctl, faults, ledger),
    }
}

fn recover_compress(
    rec: &RecoveredSession,
    input: &[u8],
    params: LzssParams,
    ctl: &RequestCtl,
    faults: &dyn Failpoints,
    ledger: &mut JobLedger,
) -> Result<Vec<u8>, JobFail> {
    let journal = &rec.journal;
    // Fastest path: the container was already promoted; re-verify it
    // end-to-end before trusting it.
    if let Ok(bytes) = fs::read(rec.dir.join(OUT_FILE)) {
        let scan = scan_partial(&bytes);
        if scan.complete
            && scan.valid_bytes == bytes.len() as u64
            && scan.uncompressed_bytes == journal.content_len
            && scan.prefix_crc() == journal.content_crc
        {
            ledger.frames += u64::from(scan.frames);
            return Ok(bytes);
        }
        return Err(unresumable("promoted container failed verification"));
    }
    let part_path = rec.dir.join(PART_FILE);
    let mut prefix = match fs::read(&part_path) {
        Ok(bytes) => bytes,
        // Crashed before the staging file existed: start over.
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return durable_compress(
                &rec.dir,
                input,
                journal.frame_bytes,
                params,
                ctl,
                faults,
                ledger,
            );
        }
        Err(e) => return Err(io_fail(e)),
    };
    let scan = scan_partial(&prefix);
    if scan.complete {
        // Finished but never promoted: the crash ate only the rename.
        if scan.uncompressed_bytes != journal.content_len
            || scan.prefix_crc() != journal.content_crc
        {
            return Err(unresumable("staged container disagrees with the journal"));
        }
        let file = OpenOptions::new().write(true).open(&part_path).map_err(io_fail)?;
        file.set_len(scan.valid_bytes).map_err(io_fail)?;
        promote(&rec.dir, &file, faults).map_err(io_fail)?;
        prefix.truncate(scan.valid_bytes as usize);
        ledger.frames += u64::from(scan.frames);
        return Ok(prefix);
    }
    // A true partial: the durable prefix must be a prefix of the journaled
    // input, frame for frame.
    if scan.uncompressed_bytes > input.len() as u64
        || scan.prefix_crc() != crc32(&input[..scan.uncompressed_bytes as usize])
    {
        return Err(unresumable("staged prefix disagrees with the journaled input"));
    }
    let mut file = OpenOptions::new().read(true).write(true).open(&part_path).map_err(io_fail)?;
    file.set_len(scan.valid_bytes).map_err(io_fail)?;
    file.seek(SeekFrom::End(0)).map_err(io_fail)?;
    let sink = DurableSink { file, appended: Vec::new(), faults };
    let mut w = FrameWriter::resume(sink, frame_config(journal.frame_bytes), params, &scan)
        .map_err(|e| unresumable(e.to_string()))?;
    for chunk in input[scan.uncompressed_bytes as usize..].chunks(journal.frame_bytes as usize) {
        ctl.checkpoint()?;
        w.write_all(chunk).map_err(io_fail)?;
    }
    ctl.checkpoint()?;
    let (sink, summary) = w.finish().map_err(io_fail)?;
    // `summary.frames` counts the whole stream: the resumed writer's seq
    // starts at the prefix's frame count.
    ledger.frames += u64::from(summary.frames);
    promote(&rec.dir, &sink.file, faults).map_err(io_fail)?;
    prefix.truncate(scan.valid_bytes as usize);
    prefix.extend_from_slice(&sink.appended);
    Ok(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quota::QuotaConfig;
    use lzfpga_faults::{FailPlan, FailRule, NoFaults};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "lzfpga-store-{tag}-{}-{:x}",
                std::process::id(),
                SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos()
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 241) as u8 ^ (i / 11) as u8).collect()
    }

    fn test_ctl(adm: &Arc<Admission>) -> RequestCtl {
        RequestCtl::new(adm.admit_request("t", 1).unwrap(), 0)
    }

    #[test]
    fn journal_roundtrips_and_rejects_corruption() {
        let j = Journal {
            token: 0xDEAD_BEEF_0042,
            op: SessionOp::Compress,
            tenant: "acme".into(),
            frame_bytes: 65536,
            content_len: 1_000_000,
            content_crc: 0x1234_5678,
            max_result: 0,
        };
        let enc = j.encode();
        assert_eq!(Journal::decode(&enc).unwrap(), j);
        // Every single-byte corruption and truncation is a typed error.
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x40;
            assert!(Journal::decode(&bad).is_err(), "corruption at byte {i} accepted");
            assert!(Journal::decode(&enc[..i]).is_err(), "truncation at {i} accepted");
        }
        // Trailing garbage is refused too.
        let mut long = enc.clone();
        long.push(0);
        assert!(Journal::decode(&long).is_err());
    }

    #[test]
    fn begin_finish_leaves_no_directories() {
        let tmp = TempDir::new("begin");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(10_000);
        let (token, dir) =
            store.begin(SessionOp::Compress, "acme", 65536, 0, &data, &NoFaults).unwrap();
        assert!(dir.join(JOURNAL_FILE).is_file());
        assert_eq!(fs::read(dir.join(INPUT_FILE)).unwrap(), data);
        assert_eq!(store.session_dirs(), 1);
        store.finish(token);
        assert_eq!(store.session_dirs(), 0);
    }

    #[test]
    fn durable_compress_matches_the_fresh_job() {
        let tmp = TempDir::new("durable");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(300_000);
        let adm = Admission::new(QuotaConfig::default());
        let ctl = test_ctl(&adm);
        let hw = lzfpga_core::HwConfig::paper_fast();
        let (_, dir) =
            store.begin(SessionOp::Compress, "acme", 65536, 0, &data, &NoFaults).unwrap();
        let mut ledger = JobLedger::default();
        let durable =
            durable_compress(&dir, &data, 65536, hw.as_lzss_params(), &ctl, &NoFaults, &mut ledger)
                .unwrap();
        let fresh = crate::jobs::compress_job(
            &data,
            65536,
            &hw,
            &ctl,
            &NoFaults,
            &mut JobLedger::default(),
        )
        .unwrap();
        assert_eq!(durable, fresh, "durable staging must not change the served bytes");
        assert_eq!(fs::read(dir.join(OUT_FILE)).unwrap(), fresh);
        assert!(!dir.join(PART_FILE).exists(), "promote consumed the staging file");
    }

    #[test]
    fn recovery_resumes_a_torn_stage_byte_identical() {
        let tmp = TempDir::new("resume");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(400_000);
        let adm = Admission::new(QuotaConfig::default());
        let ctl = test_ctl(&adm);
        let hw = lzfpga_core::HwConfig::paper_fast();
        let (token, dir) =
            store.begin(SessionOp::Compress, "acme", 65536, 0, &data, &NoFaults).unwrap();
        // Injected error at the third durable flush plays a crash: the
        // staged file holds a torn prefix.
        let plan = FailPlan::new(1).rule(FailRule::new(SERVER_FRAME_DURABLE).on_hit(3));
        let err = durable_compress(
            &dir,
            &data,
            65536,
            hw.as_lzss_params(),
            &ctl,
            &plan,
            &mut JobLedger::default(),
        )
        .unwrap_err();
        assert_eq!(err.code, RejectCode::Internal);
        assert!(dir.join(PART_FILE).is_file());
        // Simulate the restart: recover, claim, and replay.
        let report = store.recover(&adm);
        assert_eq!(report, RecoveryReport { recovered: 1, unresumable: 0, refused: 0 });
        let rec = store.claim(token, "acme").unwrap();
        let mut ledger = JobLedger::default();
        let resumed =
            recover_session(&rec, hw.as_lzss_params(), &ctl, &NoFaults, &mut ledger).unwrap();
        let fresh = crate::jobs::compress_job(
            &data,
            65536,
            &hw,
            &ctl,
            &NoFaults,
            &mut JobLedger::default(),
        )
        .unwrap();
        assert_eq!(resumed, fresh, "resume after a torn stage must be byte-identical");
        store.finish(token);
        assert_eq!(store.session_dirs(), 0);
    }

    #[test]
    fn corrupt_journal_is_swept_not_served() {
        let tmp = TempDir::new("corrupt");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(50_000);
        let (token, dir) =
            store.begin(SessionOp::Compress, "acme", 65536, 0, &data, &NoFaults).unwrap();
        // Flip one journal byte, as the drill's hostile round does.
        let mut j = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        j[10] ^= 0xFF;
        fs::write(dir.join(JOURNAL_FILE), &j).unwrap();
        let adm = Admission::new(QuotaConfig::default());
        let report = store.recover(&adm);
        assert_eq!(report, RecoveryReport { recovered: 0, unresumable: 1, refused: 0 });
        assert_eq!(store.session_dirs(), 0, "corrupt session is garbage-collected");
        assert_eq!(adm.active_bytes(), 0, "no quota held for swept sessions");
        assert_eq!(store.claim(token, "acme").unwrap_err().code, RejectCode::Unresumable);
    }

    #[test]
    fn orphan_sweep_releases_quota_and_disk() {
        let tmp = TempDir::new("orphan");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(20_000);
        store.begin(SessionOp::Decompress, "acme", 0, 1 << 20, &data, &NoFaults).unwrap();
        let adm = Admission::new(QuotaConfig::default());
        let report = store.recover(&adm);
        assert_eq!(report.recovered, 1);
        assert!(adm.active_bytes() > 0, "recovered session holds its charge");
        assert_eq!(store.sweep_orphans(Duration::from_secs(3600)), 0, "fresh session survives");
        assert_eq!(store.sweep_orphans(Duration::ZERO), 1);
        assert_eq!(store.pending(), 0);
        assert_eq!(store.session_dirs(), 0);
        assert_eq!(adm.active_bytes(), 0, "sweep returned the tenant's bytes");
        assert_eq!(adm.active_streams(), 0);
    }

    #[test]
    fn claim_enforces_tenant_ownership() {
        let tmp = TempDir::new("tenant");
        let store = SessionStore::open(&tmp.0).unwrap();
        let data = sample(5_000);
        let (token, _) =
            store.begin(SessionOp::Compress, "acme", 65536, 0, &data, &NoFaults).unwrap();
        let adm = Admission::new(QuotaConfig::default());
        store.recover(&adm);
        let err = store.claim(token, "mallory").unwrap_err();
        assert_eq!(err.code, RejectCode::Unresumable);
        assert_eq!(store.pending(), 1, "session stays parked for its owner");
        assert!(store.claim(token, "acme").is_ok());
    }
}
