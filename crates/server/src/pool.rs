//! The shared work-stealing worker pool every session submits jobs to.
//!
//! Jobs are coarse (a whole request), so the pool favours simplicity over
//! per-core queues with lock-free deques: each worker owns a local
//! `VecDeque` slot inside one mutex-guarded table, submissions round-robin
//! across slots, and an idle worker steals from the *back* of the longest
//! sibling queue when its own is dry. Under the coarse-job workload the
//! mutex is uncontended; what matters is that one tenant's burst of slow
//! requests queues on a few slots while stolen work keeps every core busy.
//!
//! Every job runs under `catch_unwind`: a panicking job increments the
//! pool's panic counter and the worker lives on — the process-stays-up
//! invariant the drill asserts starts here.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work: boxed closure, run once on some worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueues {
    /// One local queue per worker; `None` entries never exist, the Vec is
    /// sized once at startup.
    local: Vec<VecDeque<Job>>,
    /// Round-robin cursor for submissions.
    next: usize,
    shutdown: bool,
}

struct PoolShared {
    queues: Mutex<PoolQueues>,
    ready: Condvar,
    panics: AtomicU64,
    executed: AtomicU64,
}

/// The shared worker pool.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: Mutex::new(PoolQueues {
                local: (0..workers).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            panics: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lzfpga-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers: handles }
    }

    /// Queue `job` onto the next slot (round-robin). Jobs submitted after
    /// shutdown are dropped — their owners are being cancelled anyway.
    pub fn submit(&self, job: Job) {
        let mut q = self.shared.queues.lock().expect("pool lock");
        if q.shutdown {
            return;
        }
        let slot = q.next % q.local.len();
        q.next = q.next.wrapping_add(1);
        q.local[slot].push_back(job);
        drop(q);
        self.shared.ready.notify_one();
    }

    /// Jobs that panicked (and were contained).
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Jobs run to completion (panicked or not).
    pub fn executed_count(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Stop accepting work, run what is queued, and join the workers.
    pub fn shutdown(mut self) {
        {
            let mut q = self.shared.queues.lock().expect("pool lock");
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queues.lock().expect("pool lock");
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pop local work, else steal from the longest sibling queue's back.
fn take_job(q: &mut PoolQueues, me: usize) -> Option<Job> {
    if let Some(job) = q.local[me].pop_front() {
        return Some(job);
    }
    let victim = (0..q.local.len())
        .filter(|&w| w != me)
        .max_by_key(|&w| q.local[w].len())
        .filter(|&w| !q.local[w].is_empty())?;
    q.local[victim].pop_back()
}

fn worker_loop(shared: &PoolShared, me: usize) {
    loop {
        let job = {
            let mut q = shared.queues.lock().expect("pool lock");
            loop {
                if let Some(job) = take_job(&mut q, me) {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.ready.wait(q).expect("pool lock");
            }
        };
        let Some(job) = job else { return };
        // Jobs wrap their own catch_unwind to report typed errors; this
        // one is the backstop that keeps the worker thread alive no
        // matter what.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(Box::new(|| panic!("injected")));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::Relaxed);
        }));
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        // One slot gets all the jobs (round-robin over 1 queue would, so
        // force the imbalance by submitting before workers can drain and
        // using many more jobs than slots); the assertion is just that
        // everything completes promptly with 4 workers live.
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }
}
