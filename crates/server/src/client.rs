//! A small blocking client for the LZS1 protocol.
//!
//! Used by `lzfpga client`, the tests, and the `faultstorm --server`
//! connection-storm drill. The high-level calls ([`Client::compress`],
//! [`Client::decompress`], [`Client::range`]) run one request to
//! completion, verifying chunk ordering and the end-to-end CRC; the
//! low-level [`Client::send`]/[`Client::recv`] pair is what the drill
//! uses to misbehave on purpose (withhold credit, disconnect mid-request,
//! interleave hostile frames).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use lzfpga_deflate::crc32::Crc32;

use crate::proto::{
    encode_request, parse_response, read_message, ProtoError, RejectCode, Request, Response,
    MAX_WIRE_BYTES,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server spoke something unparseable (or closed mid-message).
    Proto(ProtoError),
    /// No message arrived within the read timeout.
    TimedOut,
    /// The connection was refused with a typed code.
    Rejected {
        /// The typed code.
        code: RejectCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The request failed with a typed code; the connection is still fine.
    Request {
        /// The typed code.
        code: RejectCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The response stream violated its own framing (bad offsets, CRC
    /// mismatch, wrong totals) — the transfer cannot be trusted.
    Corrupt(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Rejected { code, detail } => {
                write!(f, "connection rejected ({code}): {detail}")
            }
            ClientError::Request { code, detail } => {
                write!(f, "request failed ({code}): {detail}")
            }
            ClientError::Corrupt(what) => write!(f, "response stream corrupt: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::TimedOut => ClientError::TimedOut,
            other => ClientError::Proto(other),
        }
    }
}

/// A blocking LZS1 client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
    next_req: u64,
    auto_credit: bool,
}

impl Client {
    /// Connect, handshake as `tenant`, and start every request with
    /// `credit` bytes of response window.
    ///
    /// # Errors
    /// [`ClientError::Rejected`] with the server's typed code when
    /// admission refuses the connection; socket/protocol errors otherwise.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        credit: u64,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut client = Self { stream, session: 0, next_req: 0, auto_credit: true };
        client.send(&Request::Hello { tenant: tenant.to_string(), credit })?;
        // The handshake answer may lag behind server startup; poll a few
        // timeout ticks before giving up.
        for _ in 0..20 {
            match client.recv() {
                Ok(Response::HelloOk { session }) => {
                    client.session = session;
                    return Ok(client);
                }
                Ok(Response::Reject { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(_) => return Err(ClientError::Corrupt("non-handshake reply to Hello")),
                Err(ClientError::TimedOut) => {}
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::TimedOut)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// How long [`Client::recv`] waits before returning
    /// [`ClientError::TimedOut`].
    ///
    /// # Errors
    /// Socket configuration failure.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Turn automatic credit replenishment on or off (on by default; the
    /// drill turns it off to exercise backpressure).
    pub fn set_auto_credit(&mut self, on: bool) {
        self.auto_credit = on;
    }

    /// Send one request (low level).
    ///
    /// # Errors
    /// Socket failure.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        std::io::Write::write_all(&mut self.stream, &encode_request(req))?;
        Ok(())
    }

    /// Send raw bytes verbatim — the drill's hostile-frame injector.
    ///
    /// # Errors
    /// Socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        std::io::Write::write_all(&mut self.stream, bytes)?;
        Ok(())
    }

    /// Receive one response (low level); [`ClientError::TimedOut`] is a
    /// poll tick, not a dead connection.
    ///
    /// # Errors
    /// Socket/protocol failure, or a clean EOF
    /// ([`ProtoError::UnexpectedEof`] wrapped as a protocol error).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_message(&mut self.stream, MAX_WIRE_BYTES)? {
            Some(raw) => Ok(parse_response(&raw)?),
            None => Err(ClientError::Proto(ProtoError::UnexpectedEof)),
        }
    }

    fn next_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// Run one request to completion: collect [`Response::Data`] chunks
    /// in order, auto-grant credit as it is consumed, and verify the
    /// final [`Response::Done`] total and CRC.
    fn roundtrip(&mut self, req_id: u64, request: &Request) -> Result<Vec<u8>, ClientError> {
        self.send(request)?;
        let mut out: Vec<u8> = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            if std::time::Instant::now() > deadline {
                return Err(ClientError::TimedOut);
            }
            let rsp = match self.recv() {
                Ok(rsp) => rsp,
                Err(ClientError::TimedOut) => continue,
                Err(e) => return Err(e),
            };
            match rsp {
                Response::Data { req, offset, bytes } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("data for an unknown request"));
                    }
                    if offset != out.len() as u64 {
                        return Err(ClientError::Corrupt("data chunk out of order"));
                    }
                    let n = bytes.len() as u64;
                    out.extend_from_slice(&bytes);
                    if self.auto_credit && n > 0 {
                        self.send(&Request::Credit { req: req_id, bytes: n })?;
                    }
                }
                Response::Done { req, total, crc } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("done for an unknown request"));
                    }
                    if total != out.len() as u64 {
                        return Err(ClientError::Corrupt("done total disagrees with data"));
                    }
                    let mut check = Crc32::new();
                    check.update(&out);
                    if check.finish() != crc {
                        return Err(ClientError::Corrupt("result CRC mismatch"));
                    }
                    return Ok(out);
                }
                Response::Error { req, code, detail } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("error for an unknown request"));
                    }
                    return Err(ClientError::Request { code, detail });
                }
                Response::Reject { code, detail } => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Response::HelloOk { .. } => {
                    return Err(ClientError::Corrupt("unexpected handshake reply"))
                }
            }
        }
    }

    /// Compress `data` into an LZFC framed stream on the server.
    /// `frame_bytes == 0` uses the server default; `deadline_ms == 0`
    /// means no client deadline.
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn compress(
        &mut self,
        data: &[u8],
        frame_bytes: u32,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Compress { req, deadline_ms, frame_bytes, data: data.to_vec() },
        )
    }

    /// Strictly decompress an LZFC framed stream on the server.
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn decompress(
        &mut self,
        stream: &[u8],
        max_result: u64,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Decompress { req, deadline_ms, max_result, data: stream.to_vec() },
        )
    }

    /// Decode bytes `start..end` of the stream's original input on the
    /// server (`end == u64::MAX` means to EOF).
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn range(
        &mut self,
        stream: &[u8],
        start: u64,
        end: u64,
        max_result: u64,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Range { req, deadline_ms, start, end, max_result, data: stream.to_vec() },
        )
    }

    /// Ask the server to drain (within `drain_ms`) and shut down, then
    /// wait for it to close this connection.
    ///
    /// # Errors
    /// Socket failure sending the request. A typed
    /// [`ClientError::Rejected`] when the server refuses (remote shutdown
    /// disabled).
    pub fn shutdown_server(&mut self, drain_ms: u32) -> Result<(), ClientError> {
        self.send(&Request::Shutdown { drain_ms })?;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if std::time::Instant::now() > deadline {
                return Err(ClientError::TimedOut);
            }
            match self.recv() {
                // The drain closes the socket once nothing is in flight.
                Err(ClientError::Proto(ProtoError::UnexpectedEof)) | Err(ClientError::Io(_)) => {
                    return Ok(())
                }
                Err(ClientError::TimedOut) => {}
                Ok(Response::Reject { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(_) | Err(_) => {}
            }
        }
    }
}
