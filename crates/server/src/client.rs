//! A small blocking client for the LZS1 protocol.
//!
//! Used by `lzfpga client`, the tests, and the `faultstorm --server`
//! connection-storm drill. The high-level calls ([`Client::compress`],
//! [`Client::decompress`], [`Client::range`]) run one request to
//! completion, verifying chunk ordering and the end-to-end CRC; the
//! low-level [`Client::send`]/[`Client::recv`] pair is what the drill
//! uses to misbehave on purpose (withhold credit, disconnect mid-request,
//! interleave hostile frames).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use lzfpga_deflate::crc32::Crc32;

use crate::proto::{
    encode_request, parse_response, read_message, ProtoError, RejectCode, Request, Response,
    MAX_WIRE_BYTES,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server spoke something unparseable (or closed mid-message).
    Proto(ProtoError),
    /// No message arrived within the read timeout.
    TimedOut,
    /// The connection was refused with a typed code.
    Rejected {
        /// The typed code.
        code: RejectCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The request failed with a typed code; the connection is still fine.
    Request {
        /// The typed code.
        code: RejectCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The response stream violated its own framing (bad offsets, CRC
    /// mismatch, wrong totals) — the transfer cannot be trusted.
    Corrupt(&'static str),
    /// [`connect_with_retry`] gave up: every attempt failed with a
    /// retryable error and the attempt count or time budget ran out.
    RetriesExhausted {
        /// Total connect attempts made (first try included).
        attempts: u32,
        /// The error the final attempt failed with.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Rejected { code, detail } => {
                write!(f, "connection rejected ({code}): {detail}")
            }
            ClientError::Request { code, detail } => {
                write!(f, "request failed ({code}): {detail}")
            }
            ClientError::Corrupt(what) => write!(f, "response stream corrupt: {what}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::TimedOut => ClientError::TimedOut,
            other => ClientError::Proto(other),
        }
    }
}

/// When a failed call is worth retrying: transient transport errors, plus
/// the typed rejections that clear on their own (drain, full quotas).
/// Everything else — protocol violations, corrupt transfers, bad streams,
/// unresumable tokens — will fail identically on every retry.
pub fn retryable(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) | ClientError::TimedOut => true,
        ClientError::Rejected { code, .. } | ClientError::Request { code, .. } => matches!(
            code,
            RejectCode::Draining
                | RejectCode::SessionLimit
                | RejectCode::StreamQuota
                | RejectCode::ByteQuota
        ),
        _ => false,
    }
}

/// Capped exponential backoff with decorrelated jitter.
///
/// The schedule is `sleep[n+1] = clamp(base, cap, uniform(base,
/// 3 * sleep[n]))` — each sleep is drawn between the floor and three times
/// the previous sleep, so concurrent clients spread out instead of
/// thundering back in lockstep. The jitter source is a seeded xorshift, so
/// a given policy's schedule is deterministic and testable.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Total wall-clock budget across every attempt and sleep.
    pub budget: Duration,
    /// Floor for every backoff sleep.
    pub base: Duration,
    /// Cap for every backoff sleep.
    pub cap: Duration,
    /// Jitter seed; the same seed replays the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            budget: Duration::from_secs(30),
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The first `n` backoff sleeps this policy produces (pure — tests pin
    /// the schedule; [`connect_with_retry`] consumes it in order).
    pub fn schedule(&self, n: u32) -> Vec<Duration> {
        let base = self.base.max(Duration::from_millis(1));
        let cap = self.cap.max(base);
        // 2n+1 keeps the xorshift state nonzero without collapsing
        // adjacent seeds onto one another.
        let mut state = self.seed.wrapping_mul(2).wrapping_add(1);
        let mut prev = base;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let hi = prev.saturating_mul(3).min(cap);
            let span = hi.saturating_sub(base).as_millis() as u64;
            let jitter = if span == 0 { 0 } else { state % (span + 1) };
            let sleep = base + Duration::from_millis(jitter);
            prev = sleep;
            out.push(sleep);
        }
        out
    }
}

/// Connect with retries under `policy`: transient failures
/// ([`retryable`]) back off and try again; anything else surfaces
/// immediately, untouched.
///
/// # Errors
/// The original error when it is not retryable, or
/// [`ClientError::RetriesExhausted`] (wrapping the last attempt's error)
/// once the attempt count or the time budget runs out.
pub fn connect_with_retry(
    addr: impl ToSocketAddrs + Copy,
    tenant: &str,
    credit: u64,
    policy: &RetryPolicy,
) -> Result<Client, ClientError> {
    let started = std::time::Instant::now();
    let sleeps = policy.schedule(policy.max_retries);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let err = match Client::connect(addr, tenant, credit) {
            Ok(client) => return Ok(client),
            Err(e) if !retryable(&e) => return Err(e),
            Err(e) => e,
        };
        let used = (attempts - 1) as usize;
        if used >= sleeps.len() || started.elapsed() >= policy.budget {
            return Err(ClientError::RetriesExhausted { attempts, last: Box::new(err) });
        }
        let left = policy.budget.saturating_sub(started.elapsed());
        std::thread::sleep(sleeps[used].min(left));
    }
}

/// A blocking LZS1 client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
    next_req: u64,
    auto_credit: bool,
    /// Durable session token from the most recent request, when the
    /// server journals sessions.
    last_token: Option<u64>,
    /// Result bytes received before the most recent failure — the resume
    /// seed after a server crash.
    partial: Vec<u8>,
}

impl Client {
    /// Connect, handshake as `tenant`, and start every request with
    /// `credit` bytes of response window.
    ///
    /// # Errors
    /// [`ClientError::Rejected`] with the server's typed code when
    /// admission refuses the connection; socket/protocol errors otherwise.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        credit: u64,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut client = Self {
            stream,
            session: 0,
            next_req: 0,
            auto_credit: true,
            last_token: None,
            partial: Vec::new(),
        };
        client.send(&Request::Hello { tenant: tenant.to_string(), credit })?;
        // The handshake answer may lag behind server startup; poll a few
        // timeout ticks before giving up.
        for _ in 0..20 {
            match client.recv() {
                Ok(Response::HelloOk { session }) => {
                    client.session = session;
                    return Ok(client);
                }
                Ok(Response::Reject { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(_) => return Err(ClientError::Corrupt("non-handshake reply to Hello")),
                Err(ClientError::TimedOut) => {}
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::TimedOut)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The durable session token the server announced for the most recent
    /// request (`None` when the server runs without a state dir). After a
    /// server crash this token plus [`Client::take_partial`] is everything
    /// [`Client::resume`] needs.
    pub fn session_token(&self) -> Option<u64> {
        self.last_token
    }

    /// Take the result bytes that arrived before the most recent failure
    /// (empty when the last call succeeded). Feed them to
    /// [`Client::resume`] as the already-acknowledged prefix.
    pub fn take_partial(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.partial)
    }

    /// How long [`Client::recv`] waits before returning
    /// [`ClientError::TimedOut`].
    ///
    /// # Errors
    /// Socket configuration failure.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Turn automatic credit replenishment on or off (on by default; the
    /// drill turns it off to exercise backpressure).
    pub fn set_auto_credit(&mut self, on: bool) {
        self.auto_credit = on;
    }

    /// Send one request (low level).
    ///
    /// # Errors
    /// Socket failure.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        std::io::Write::write_all(&mut self.stream, &encode_request(req))?;
        Ok(())
    }

    /// Send raw bytes verbatim — the drill's hostile-frame injector.
    ///
    /// # Errors
    /// Socket failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        std::io::Write::write_all(&mut self.stream, bytes)?;
        Ok(())
    }

    /// Receive one response (low level); [`ClientError::TimedOut`] is a
    /// poll tick, not a dead connection.
    ///
    /// # Errors
    /// Socket/protocol failure, or a clean EOF
    /// ([`ProtoError::UnexpectedEof`] wrapped as a protocol error).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_message(&mut self.stream, MAX_WIRE_BYTES)? {
            Some(raw) => Ok(parse_response(&raw)?),
            None => Err(ClientError::Proto(ProtoError::UnexpectedEof)),
        }
    }

    fn next_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// Run one request to completion: collect [`Response::Data`] chunks
    /// in order, auto-grant credit as it is consumed, and verify the
    /// final [`Response::Done`] total and CRC. On failure the bytes that
    /// did arrive are parked for [`Client::take_partial`].
    fn roundtrip(&mut self, req_id: u64, request: &Request) -> Result<Vec<u8>, ClientError> {
        self.last_token = None;
        self.send(request)?;
        let mut out: Vec<u8> = Vec::new();
        match self.collect(req_id, &mut out) {
            Ok(()) => {
                self.partial.clear();
                Ok(out)
            }
            Err(e) => {
                self.partial = out;
                Err(e)
            }
        }
    }

    /// The receive half of a request: append in-order chunks to `out`
    /// (which may be pre-seeded with an already-acknowledged prefix) until
    /// `Done` verifies the whole thing.
    fn collect(&mut self, req_id: u64, out: &mut Vec<u8>) -> Result<(), ClientError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            if std::time::Instant::now() > deadline {
                return Err(ClientError::TimedOut);
            }
            let rsp = match self.recv() {
                Ok(rsp) => rsp,
                Err(ClientError::TimedOut) => continue,
                Err(e) => return Err(e),
            };
            match rsp {
                Response::Data { req, offset, bytes } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("data for an unknown request"));
                    }
                    if offset != out.len() as u64 {
                        return Err(ClientError::Corrupt("data chunk out of order"));
                    }
                    let n = bytes.len() as u64;
                    out.extend_from_slice(&bytes);
                    if self.auto_credit && n > 0 {
                        self.send(&Request::Credit { req: req_id, bytes: n })?;
                    }
                }
                Response::Session { req, token } => {
                    if req == req_id {
                        self.last_token = Some(token);
                    }
                }
                Response::Done { req, total, crc } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("done for an unknown request"));
                    }
                    if total != out.len() as u64 {
                        return Err(ClientError::Corrupt("done total disagrees with data"));
                    }
                    let mut check = Crc32::new();
                    check.update(out);
                    if check.finish() != crc {
                        return Err(ClientError::Corrupt("result CRC mismatch"));
                    }
                    return Ok(());
                }
                Response::Error { req, code, detail } => {
                    if req != req_id {
                        return Err(ClientError::Corrupt("error for an unknown request"));
                    }
                    return Err(ClientError::Request { code, detail });
                }
                Response::Reject { code, detail } => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Response::HelloOk { .. } => {
                    return Err(ClientError::Corrupt("unexpected handshake reply"))
                }
            }
        }
    }

    /// Compress `data` into an LZFC framed stream on the server.
    /// `frame_bytes == 0` uses the server default; `deadline_ms == 0`
    /// means no client deadline.
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn compress(
        &mut self,
        data: &[u8],
        frame_bytes: u32,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Compress { req, deadline_ms, frame_bytes, data: data.to_vec() },
        )
    }

    /// Strictly decompress an LZFC framed stream on the server.
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn decompress(
        &mut self,
        stream: &[u8],
        max_result: u64,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Decompress { req, deadline_ms, max_result, data: stream.to_vec() },
        )
    }

    /// Decode bytes `start..end` of the stream's original input on the
    /// server (`end == u64::MAX` means to EOF).
    ///
    /// # Errors
    /// Typed request failures, socket errors, or corrupt transfers.
    pub fn range(
        &mut self,
        stream: &[u8],
        start: u64,
        end: u64,
        max_result: u64,
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.roundtrip(
            req,
            &Request::Range { req, deadline_ms, start, end, max_result, data: stream.to_vec() },
        )
    }

    /// Resume a journaled session after a server restart: `token` is the
    /// [`Response::Session`] token from the interrupted request (see
    /// [`Client::session_token`]) and `prefix` is whatever result bytes
    /// already arrived ([`Client::take_partial`]). The server re-serves
    /// from `prefix.len()`; the returned buffer is the complete result,
    /// CRC-verified end to end, byte-identical to the uninterrupted run.
    ///
    /// # Errors
    /// [`RejectCode::Unresumable`] (as [`ClientError::Request`]) when the
    /// token is unknown, expired, owned by another tenant, or its journal
    /// failed verification — plus the usual transport errors.
    pub fn resume(
        &mut self,
        token: u64,
        prefix: &[u8],
        deadline_ms: u32,
    ) -> Result<Vec<u8>, ClientError> {
        let req = self.next_req();
        self.last_token = None;
        self.send(&Request::Resume { req, deadline_ms, token, acked: prefix.len() as u64 })?;
        let mut out = prefix.to_vec();
        match self.collect(req, &mut out) {
            Ok(()) => {
                self.partial.clear();
                Ok(out)
            }
            Err(e) => {
                self.partial = out;
                Err(e)
            }
        }
    }

    /// Ask the server to drain (within `drain_ms`) and shut down, then
    /// wait for it to close this connection.
    ///
    /// # Errors
    /// Socket failure sending the request. A typed
    /// [`ClientError::Rejected`] when the server refuses (remote shutdown
    /// disabled).
    pub fn shutdown_server(&mut self, drain_ms: u32) -> Result<(), ClientError> {
        self.send(&Request::Shutdown { drain_ms })?;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            if std::time::Instant::now() > deadline {
                return Err(ClientError::TimedOut);
            }
            match self.recv() {
                // The drain closes the socket once nothing is in flight.
                Err(ClientError::Proto(ProtoError::UnexpectedEof)) | Err(ClientError::Io(_)) => {
                    return Ok(())
                }
                Err(ClientError::TimedOut) => {}
                Ok(Response::Reject { code, detail }) => {
                    return Err(ClientError::Rejected { code, detail })
                }
                Ok(_) | Err(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 8,
            budget: Duration::from_secs(30),
            base: Duration::from_millis(50),
            cap: Duration::from_millis(800),
            seed: 42,
        };
        let a = policy.schedule(8);
        let b = policy.schedule(8);
        assert_eq!(a, b, "same seed must replay the same schedule");
        for sleep in &a {
            assert!(*sleep >= policy.base, "sleep {sleep:?} under the base floor");
            assert!(*sleep <= policy.cap, "sleep {sleep:?} over the cap");
        }
        // Different seeds decorrelate.
        let c = RetryPolicy { seed: 43, ..policy }.schedule(8);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_policies_stay_sane() {
        // cap below base: every sleep collapses to the floor.
        let tight = RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        for sleep in tight.schedule(4) {
            assert_eq!(sleep, Duration::from_millis(100));
        }
        // Zero base gets the 1ms floor instead of a zero-length spin.
        let zero = RetryPolicy { base: Duration::ZERO, ..RetryPolicy::default() };
        for sleep in zero.schedule(4) {
            assert!(sleep >= Duration::from_millis(1));
        }
        assert!(RetryPolicy::default().schedule(0).is_empty());
    }

    #[test]
    fn retryable_classifies_codes() {
        let req = |code| ClientError::Request { code, detail: String::new() };
        let rej = |code| ClientError::Rejected { code, detail: String::new() };
        for code in [
            RejectCode::Draining,
            RejectCode::SessionLimit,
            RejectCode::StreamQuota,
            RejectCode::ByteQuota,
        ] {
            assert!(retryable(&req(code)), "{code} should retry");
            assert!(retryable(&rej(code)), "{code} should retry");
        }
        for code in [
            RejectCode::TooLarge,
            RejectCode::Protocol,
            RejectCode::DeadlineExceeded,
            RejectCode::Cancelled,
            RejectCode::Internal,
            RejectCode::BadStream,
            RejectCode::RangeUnavailable,
            RejectCode::Unresumable,
        ] {
            assert!(!retryable(&req(code)), "{code} must not retry");
        }
        assert!(retryable(&ClientError::TimedOut));
        assert!(retryable(&ClientError::Io(std::io::Error::other("refused"))));
        assert!(!retryable(&ClientError::Corrupt("bad")));
        assert!(!retryable(&ClientError::RetriesExhausted {
            attempts: 3,
            last: Box::new(ClientError::TimedOut),
        }));
    }

    #[test]
    fn retries_exhausted_gives_up_fast_against_nothing() {
        // Port 1 on localhost refuses immediately; a zero-retry policy
        // must surface RetriesExhausted after exactly one attempt.
        let policy = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        match connect_with_retry("127.0.0.1:1", "t", 1 << 20, &policy) {
            Err(ClientError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 1);
                assert!(retryable(&last));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
}
