//! Admission control: session caps, per-tenant quotas, and leak-proof
//! release.
//!
//! Every admitted resource is held by a guard (`SessionGuard`,
//! [`Charge`]) whose `Drop` returns it, so quota release survives panics,
//! early returns, and torn-down connections — the connection-storm drill
//! asserts the gauges land back at zero after every storm. Admission
//! charges a request's *worst case* (payload plus declared result budget)
//! up front; a slow reader therefore holds only its own tenant's budget
//! and starves nobody else.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::proto::RejectCode;

/// Limits the admission controller enforces.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Concurrent sessions across all tenants.
    pub max_sessions: usize,
    /// Concurrent in-flight requests per tenant.
    pub max_streams_per_tenant: usize,
    /// Bytes in flight (payload + declared result budget) per tenant.
    pub max_bytes_per_tenant: u64,
    /// Largest single request payload accepted on the wire.
    pub max_request_bytes: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self {
            max_sessions: 256,
            max_streams_per_tenant: 32,
            max_bytes_per_tenant: 256 << 20,
            max_request_bytes: 32 << 20,
        }
    }
}

/// One tenant's live usage.
#[derive(Debug, Default)]
struct TenantUsage {
    streams: usize,
    bytes: u64,
}

#[derive(Debug, Default)]
struct AdmissionInner {
    sessions: usize,
    tenants: HashMap<String, TenantUsage>,
}

/// The shared admission controller.
#[derive(Debug)]
pub struct Admission {
    config: QuotaConfig,
    inner: Mutex<AdmissionInner>,
}

impl Admission {
    /// Build a controller enforcing `config`.
    pub fn new(config: QuotaConfig) -> Arc<Self> {
        Arc::new(Self { config, inner: Mutex::new(AdmissionInner::default()) })
    }

    /// The limits in force.
    pub fn config(&self) -> &QuotaConfig {
        &self.config
    }

    /// Admit a new session, or say why not.
    ///
    /// # Errors
    /// [`RejectCode::SessionLimit`] at the global cap.
    pub fn admit_session(self: &Arc<Self>) -> Result<SessionGuard, RejectCode> {
        let mut inner = self.inner.lock().expect("admission lock");
        if inner.sessions >= self.config.max_sessions {
            return Err(RejectCode::SessionLimit);
        }
        inner.sessions += 1;
        Ok(SessionGuard { admission: Arc::clone(self) })
    }

    /// Admit one request for `tenant`, charging `bytes` (payload plus
    /// declared result budget) against its in-flight budget.
    ///
    /// # Errors
    /// The typed quota that refused it.
    pub fn admit_request(self: &Arc<Self>, tenant: &str, bytes: u64) -> Result<Charge, RejectCode> {
        let mut inner = self.inner.lock().expect("admission lock");
        let usage = inner.tenants.entry(tenant.to_string()).or_default();
        if usage.streams >= self.config.max_streams_per_tenant {
            return Err(RejectCode::StreamQuota);
        }
        if usage.bytes.saturating_add(bytes) > self.config.max_bytes_per_tenant {
            return Err(RejectCode::ByteQuota);
        }
        usage.streams += 1;
        usage.bytes += bytes;
        Ok(Charge { admission: Arc::clone(self), tenant: tenant.to_string(), bytes })
    }

    /// Live session count (drill leak assertion).
    pub fn active_sessions(&self) -> usize {
        self.inner.lock().expect("admission lock").sessions
    }

    /// Live in-flight request count across all tenants.
    pub fn active_streams(&self) -> usize {
        self.inner.lock().expect("admission lock").tenants.values().map(|u| u.streams).sum()
    }

    /// Live bytes in flight across all tenants.
    pub fn active_bytes(&self) -> u64 {
        self.inner.lock().expect("admission lock").tenants.values().map(|u| u.bytes).sum()
    }

    fn release_session(&self) {
        let mut inner = self.inner.lock().expect("admission lock");
        inner.sessions = inner.sessions.saturating_sub(1);
    }

    fn release_request(&self, tenant: &str, bytes: u64) {
        let mut inner = self.inner.lock().expect("admission lock");
        if let Some(usage) = inner.tenants.get_mut(tenant) {
            usage.streams = usage.streams.saturating_sub(1);
            usage.bytes = usage.bytes.saturating_sub(bytes);
            if usage.streams == 0 && usage.bytes == 0 {
                inner.tenants.remove(tenant);
            }
        }
    }
}

/// Holds one admitted session slot; dropping it releases the slot.
#[derive(Debug)]
pub struct SessionGuard {
    admission: Arc<Admission>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.admission.release_session();
    }
}

/// Holds one admitted request's stream slot and byte budget; dropping it
/// releases both.
#[derive(Debug)]
pub struct Charge {
    admission: Arc<Admission>,
    tenant: String,
    bytes: u64,
}

impl Drop for Charge {
    fn drop(&mut self) {
        self.admission.release_request(&self.tenant, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cap_and_release() {
        let adm = Admission::new(QuotaConfig { max_sessions: 2, ..QuotaConfig::default() });
        let a = adm.admit_session().unwrap();
        let _b = adm.admit_session().unwrap();
        assert_eq!(adm.admit_session().unwrap_err(), RejectCode::SessionLimit);
        drop(a);
        assert_eq!(adm.active_sessions(), 1);
        let _c = adm.admit_session().unwrap();
    }

    #[test]
    fn tenant_quotas_are_isolated() {
        let adm = Admission::new(QuotaConfig {
            max_streams_per_tenant: 1,
            max_bytes_per_tenant: 100,
            ..QuotaConfig::default()
        });
        let a = adm.admit_request("alice", 60).unwrap();
        // Alice is at her stream cap; Bob is unaffected.
        assert_eq!(adm.admit_request("alice", 1).unwrap_err(), RejectCode::StreamQuota);
        let _b = adm.admit_request("bob", 99).unwrap();
        drop(a);
        // Byte quota refuses before stream quota admits too much.
        assert_eq!(adm.admit_request("alice", 101).unwrap_err(), RejectCode::ByteQuota);
        let _a2 = adm.admit_request("alice", 100).unwrap();
        assert_eq!(adm.active_streams(), 2);
        assert_eq!(adm.active_bytes(), 199);
    }

    #[test]
    fn drop_releases_even_across_panics() {
        let adm = Admission::new(QuotaConfig::default());
        let adm2 = Arc::clone(&adm);
        let _ = std::panic::catch_unwind(move || {
            let _charge = adm2.admit_request("t", 1000).unwrap();
            panic!("worker died");
        });
        assert_eq!(adm.active_streams(), 0);
        assert_eq!(adm.active_bytes(), 0);
    }
}
