//! Per-job failure accounting: what failed, what was retried, what
//! degraded, and which injected faults actually fired.

use crate::plan::{FaultAction, FaultEvent};
use lzfpga_telemetry::json::{obj, JsonValue};

/// Outcome ledger of one fault-tolerant job (e.g. a `compress_parallel`
/// run): every recovery action the pipeline took, plus the injected faults
/// that caused them, so tests can assert the report records *exactly* the
/// faults that were planned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureReport {
    /// Total per-chunk compression attempts (≥ chunk count; each retry and
    /// degraded run adds one).
    pub attempts: u64,
    /// Chunks that were retried once on the same engine after a failure.
    pub retries: u64,
    /// Chunk indices that fell back to the single-threaded reference
    /// engine after the retry also failed (sorted).
    pub degraded_chunks: Vec<usize>,
    /// Chunk indices that failed even the reference engine (sorted; the
    /// job reports a typed error when this is non-empty).
    pub failed_chunks: Vec<usize>,
    /// Worker panics caught and recovered from (each one is a logical
    /// worker restart).
    pub worker_restarts: u64,
    /// Typed errors injected by failpoints and absorbed by the ladder.
    pub injected_errors: u64,
    /// The faults the active [`FailPlan`](crate::plan::FailPlan) fired
    /// during the job (empty under `NoFaults`).
    pub injected: Vec<FaultEvent>,
}

impl FailureReport {
    /// True when nothing failed and nothing was injected.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.degraded_chunks.is_empty()
            && self.failed_chunks.is_empty()
            && self.worker_restarts == 0
            && self.injected_errors == 0
            && self.injected.is_empty()
    }

    /// Fold another worker's ledger into this one (chunk lists re-sorted).
    pub fn merge(&mut self, other: &FailureReport) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.degraded_chunks.extend_from_slice(&other.degraded_chunks);
        self.degraded_chunks.sort_unstable();
        self.failed_chunks.extend_from_slice(&other.failed_chunks);
        self.failed_chunks.sort_unstable();
        self.worker_restarts += other.worker_restarts;
        self.injected_errors += other.injected_errors;
        self.injected.extend(other.injected.iter().cloned());
    }

    /// JSON form for the telemetry sink (`"faults"` event).
    pub fn to_json(&self) -> JsonValue {
        let action_name = |a: &FaultAction| match a {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
            FaultAction::Delay(_) => "delay",
            FaultAction::Crash => "crash",
        };
        obj([
            ("attempts", self.attempts.into()),
            ("retries", self.retries.into()),
            (
                "degraded_chunks",
                JsonValue::Array(self.degraded_chunks.iter().map(|&i| (i as u64).into()).collect()),
            ),
            (
                "failed_chunks",
                JsonValue::Array(self.failed_chunks.iter().map(|&i| (i as u64).into()).collect()),
            ),
            ("worker_restarts", self.worker_restarts.into()),
            ("injected_errors", self.injected_errors.into()),
            (
                "injected",
                JsonValue::Array(
                    self.injected
                        .iter()
                        .map(|e| {
                            obj([
                                ("site", e.site.as_str().into()),
                                ("hit", e.hit.into()),
                                ("action", action_name(&e.action).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("clean", self.is_clean().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert!(FailureReport::default().is_clean());
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a = FailureReport {
            attempts: 3,
            degraded_chunks: vec![5],
            worker_restarts: 1,
            ..FailureReport::default()
        };
        let b = FailureReport {
            attempts: 2,
            retries: 1,
            degraded_chunks: vec![2],
            injected_errors: 1,
            ..FailureReport::default()
        };
        a.merge(&b);
        assert_eq!(a.attempts, 5);
        assert_eq!(a.retries, 1);
        assert_eq!(a.degraded_chunks, vec![2, 5]);
        assert_eq!(a.worker_restarts, 1);
        assert_eq!(a.injected_errors, 1);
        assert!(!a.is_clean());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let rep = FailureReport {
            attempts: 9,
            retries: 1,
            degraded_chunks: vec![3],
            worker_restarts: 2,
            injected: vec![FaultEvent {
                site: "parallel.worker.chunk".into(),
                hit: 4,
                action: FaultAction::Panic,
            }],
            ..FailureReport::default()
        };
        let parsed = lzfpga_telemetry::json::parse(&rep.to_json().render()).unwrap();
        assert_eq!(parsed.get("attempts").unwrap().as_i64(), Some(9));
        assert_eq!(parsed.get("clean").unwrap().as_bool(), Some(false));
        let injected = parsed.get("injected").unwrap().as_array().unwrap();
        assert_eq!(injected.len(), 1);
        assert_eq!(injected[0].get("action").unwrap().as_str(), Some("panic"));
        assert_eq!(injected[0].get("hit").unwrap().as_i64(), Some(4));
    }
}
