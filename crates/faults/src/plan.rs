//! Failpoints: named fault-injection sites with a zero-cost disabled form.
//!
//! Hot paths take a `&F where F: Failpoints` the same way the turbo match
//! loop takes a `MatchProbe`: with the default [`NoFaults`] every
//! [`Failpoints::check`] call inlines to `false` and the compiled code is
//! identical to a build without failpoints. A [`FailPlan`] replaces it in
//! tests and drills, triggering by **site name + hit count** (optionally
//! thinned by a seeded PRNG) with one of four actions: inject a typed
//! error, inject a panic, inject a delay, or abort the whole process
//! (the crash-durability drill's `kill -9` stand-in, armed across process
//! boundaries via [`CRASH_SITE_ENV`]/[`CRASH_HIT_ENV`]).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// What a triggered failpoint does to the code that hit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The site reports a typed error (each integration maps it to its own
    /// error enum, e.g. `DecompError::Injected`).
    Error,
    /// The site panics (`panic!("injected panic at …")`), exercising
    /// catch-unwind isolation.
    Panic,
    /// The site sleeps for the given duration, exercising timeout and
    /// pipeline-stall behaviour.
    Delay(Duration),
    /// The site aborts the whole process (`std::process::abort`),
    /// simulating a `kill -9` at an exact point in the write path. Used by
    /// the crash-durability drill; armed in subprocesses via
    /// [`CRASH_SITE_ENV`]/[`CRASH_HIT_ENV`].
    Crash,
}

/// Environment variable naming the failpoint site at which an armed
/// subprocess must abort (see [`FailPlan::from_env`]).
pub const CRASH_SITE_ENV: &str = "LZFPGA_CRASH_SITE";

/// Environment variable giving the 1-based hit count at which the armed
/// crash site fires (default `1`; see [`FailPlan::from_env`]).
pub const CRASH_HIT_ENV: &str = "LZFPGA_CRASH_HIT";

/// A typed error injected by a failpoint, carrying the site that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint site name.
    pub site: &'static str,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint '{}'", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// One fault that actually fired (for [`FailureReport`] cross-checks).
///
/// [`FailureReport`]: crate::report::FailureReport
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Site name that fired.
    pub site: String,
    /// 1-based hit count at which it fired.
    pub hit: u64,
    /// The action injected.
    pub action: FaultAction,
}

/// The failpoint interface hot paths are generic over.
///
/// Implementations must be shareable across worker threads (`Sync`); the
/// disabled form is a ZST and the enabled form serializes through a mutex
/// (failpoints are a test-time tool — the enabled path is allowed to cost).
pub trait Failpoints: Sync {
    /// Evaluate the failpoint named `site`, returning the action to inject
    /// (if any). [`NoFaults`] returns `None` unconditionally and inlines
    /// away.
    fn fire(&self, site: &str) -> Option<FaultAction>;

    /// Evaluate `site` and *perform* panic/delay actions in place.
    ///
    /// Returns `true` when the caller should inject its typed error,
    /// `false` to proceed normally.
    ///
    /// # Panics
    /// Panics when the plan injects [`FaultAction::Panic`] at this site —
    /// that is the point. [`FaultAction::Crash`] goes further and aborts
    /// the whole process without unwinding, exactly like `kill -9`.
    #[inline]
    fn check(&self, site: &str) -> bool {
        match self.fire(site) {
            None => false,
            Some(FaultAction::Error) => true,
            Some(FaultAction::Panic) => panic!("injected panic at failpoint '{site}'"),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(FaultAction::Crash) => {
                // Flush nothing, unwind nothing: the drill wants the exact
                // on-disk state at this instruction, as a power cut or
                // SIGKILL would leave it.
                eprintln!("injected crash at failpoint '{site}'");
                std::process::abort();
            }
        }
    }

    /// Take the log of faults fired so far (empty for [`NoFaults`]).
    fn drain_events(&self) -> Vec<FaultEvent> {
        Vec::new()
    }
}

/// The disabled failpoint set: nothing ever fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl Failpoints for NoFaults {
    #[inline]
    fn fire(&self, _site: &str) -> Option<FaultAction> {
        None
    }
}

/// One injection rule inside a [`FailPlan`].
///
/// Triggers when its site's 1-based hit counter lands in
/// `[first_hit, first_hit + times)`, optionally thinned to a per-mille
/// chance drawn from the plan's seeded PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailRule {
    site: String,
    first_hit: u64,
    times: u64,
    chance_permille: u16,
    action: FaultAction,
}

impl FailRule {
    /// A rule for `site`: fires on the first hit, once, deterministically,
    /// injecting a typed error. Refine with the builder methods.
    pub fn new(site: &str) -> Self {
        Self {
            site: site.to_string(),
            first_hit: 1,
            times: 1,
            chance_permille: 0,
            action: FaultAction::Error,
        }
    }

    /// First 1-based hit count at which the rule triggers.
    #[must_use]
    pub fn on_hit(mut self, hit: u64) -> Self {
        self.first_hit = hit.max(1);
        self
    }

    /// Trigger on `n` consecutive hits starting at the configured hit.
    #[must_use]
    pub fn times(mut self, n: u64) -> Self {
        self.times = n.max(1);
        self
    }

    /// Thin triggering to `permille`/1000 probability (seeded PRNG draw
    /// per eligible hit; 0 = always fire).
    #[must_use]
    pub fn chance_permille(mut self, permille: u16) -> Self {
        self.chance_permille = permille.min(1000);
        self
    }

    /// Inject a typed error (the default action).
    #[must_use]
    pub fn errors(mut self) -> Self {
        self.action = FaultAction::Error;
        self
    }

    /// Inject a panic.
    #[must_use]
    pub fn panics(mut self) -> Self {
        self.action = FaultAction::Panic;
        self
    }

    /// Inject a sleep of `ms` milliseconds.
    #[must_use]
    pub fn delays_ms(mut self, ms: u64) -> Self {
        self.action = FaultAction::Delay(Duration::from_millis(ms));
        self
    }

    /// Abort the process (`std::process::abort`) when the rule fires.
    #[must_use]
    pub fn crashes(mut self) -> Self {
        self.action = FaultAction::Crash;
        self
    }
}

/// Mutable plan state behind one lock: per-site hit counters, the PRNG,
/// and the log of fired faults.
#[derive(Debug)]
struct PlanState {
    hits: BTreeMap<String, u64>,
    rng: u64,
    fired: Vec<FaultEvent>,
}

/// A seeded set of [`FailRule`]s evaluated at every failpoint.
///
/// Deterministic: the same plan against the same execution order fires the
/// same faults. (Across racing worker threads the per-site hit *order* is
/// scheduling-dependent, so multi-threaded tests should trigger by sites
/// that are hit a known number of times per job.)
#[derive(Debug)]
pub struct FailPlan {
    rules: Vec<FailRule>,
    state: Mutex<PlanState>,
}

impl FailPlan {
    /// An empty plan with the given PRNG seed (0 is remapped to a fixed
    /// non-zero constant — xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        let rng = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        Self {
            rules: Vec::new(),
            state: Mutex::new(PlanState { hits: BTreeMap::new(), rng, fired: Vec::new() }),
        }
    }

    /// Add a rule (builder style).
    #[must_use]
    pub fn rule(mut self, rule: FailRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Total faults fired so far.
    pub fn fired_count(&self) -> usize {
        self.state.lock().expect("fail plan lock").fired.len()
    }

    /// A plan with exactly one crash rule: abort the process the `hit`-th
    /// time `site` is evaluated (1-based; 0 is clamped to 1).
    pub fn crash_at(site: &str, hit: u64) -> Self {
        Self::new(0).rule(FailRule::new(site).on_hit(hit.max(1)).crashes())
    }

    /// Build a crash plan from the environment, the arming mechanism for
    /// real subprocesses: [`CRASH_SITE_ENV`] names the site, optional
    /// [`CRASH_HIT_ENV`] the 1-based hit count (default 1, non-numeric
    /// values fall back to 1). Returns `None` when no site is armed, so an
    /// unarmed process pays nothing.
    pub fn from_env() -> Option<Self> {
        let site = std::env::var(CRASH_SITE_ENV).ok()?;
        let hit = std::env::var(CRASH_HIT_ENV).ok();
        Some(Self::from_env_values(&site, hit.as_deref()))
    }

    fn from_env_values(site: &str, hit: Option<&str>) -> Self {
        let hit = hit.and_then(|h| h.trim().parse::<u64>().ok()).unwrap_or(1);
        Self::crash_at(site, hit)
    }
}

impl Failpoints for FailPlan {
    fn fire(&self, site: &str) -> Option<FaultAction> {
        let mut st = self.state.lock().expect("fail plan lock");
        let counter = st.hits.entry(site.to_string()).or_insert(0);
        *counter += 1;
        let hit = *counter;
        for rule in &self.rules {
            if rule.site != site || hit < rule.first_hit || hit - rule.first_hit >= rule.times {
                continue;
            }
            if rule.chance_permille > 0 {
                // xorshift64 draw; deterministic given the seed and the
                // global evaluation order.
                let mut x = st.rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                st.rng = x;
                if (x % 1000) >= u64::from(rule.chance_permille) {
                    continue;
                }
            }
            let action = rule.action;
            st.fired.push(FaultEvent { site: site.to_string(), hit, action });
            return Some(action);
        }
        None
    }

    fn drain_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.state.lock().expect("fail plan lock").fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_fires() {
        assert_eq!(NoFaults.fire("anything"), None);
        assert!(!NoFaults.check("anything"));
        assert!(NoFaults.drain_events().is_empty());
    }

    #[test]
    fn plan_triggers_on_site_and_hit_count() {
        let plan = FailPlan::new(1).rule(FailRule::new("a.b").on_hit(3));
        assert_eq!(plan.fire("a.b"), None);
        assert_eq!(plan.fire("other"), None);
        assert_eq!(plan.fire("a.b"), None);
        assert_eq!(plan.fire("a.b"), Some(FaultAction::Error));
        assert_eq!(plan.fire("a.b"), None, "fires once by default");
        let events = plan.drain_events();
        assert_eq!(
            events,
            vec![FaultEvent { site: "a.b".into(), hit: 3, action: FaultAction::Error }]
        );
        assert!(plan.drain_events().is_empty(), "drain empties the log");
    }

    #[test]
    fn times_widens_the_trigger_window() {
        let plan = FailPlan::new(1).rule(FailRule::new("s").on_hit(2).times(2).panics());
        assert_eq!(plan.fire("s"), None);
        assert_eq!(plan.fire("s"), Some(FaultAction::Panic));
        assert_eq!(plan.fire("s"), Some(FaultAction::Panic));
        assert_eq!(plan.fire("s"), None);
        assert_eq!(plan.fired_count(), 2);
    }

    #[test]
    fn check_performs_panic() {
        let plan = FailPlan::new(1).rule(FailRule::new("boom").panics());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.check("boom")))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("injected panic at failpoint 'boom'"));
    }

    #[test]
    fn chance_rules_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<u64> {
            let plan = FailPlan::new(seed)
                .rule(FailRule::new("p").on_hit(1).times(1_000).chance_permille(250));
            (0..1_000).filter_map(|i| plan.fire("p").map(|_| i)).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same firings");
        assert_ne!(a, c, "different seed, different firings");
        // ~25 % of 1000 hits, with generous slack.
        assert!(a.len() > 150 && a.len() < 350, "fired {} of 1000", a.len());
    }

    #[test]
    fn crash_plan_arms_the_right_site_and_hit() {
        // Only `fire` here, never `check`: performing a Crash aborts the
        // test runner. The subprocess drill (`crashstorm`) covers that.
        let plan = FailPlan::crash_at("server.frame.durable", 3);
        assert_eq!(plan.fire("server.frame.durable"), None);
        assert_eq!(plan.fire("server.journal.append"), None, "other sites stay inert");
        assert_eq!(plan.fire("server.frame.durable"), None);
        assert_eq!(plan.fire("server.frame.durable"), Some(FaultAction::Crash));
        assert_eq!(plan.fire("server.frame.durable"), None, "fires once");
    }

    #[test]
    fn env_values_parse_with_defaults() {
        let fire_hit = |plan: FailPlan| -> u64 {
            (1..=10).find(|_| plan.fire("s").is_some()).expect("armed rule fires within 10 hits")
        };
        assert_eq!(fire_hit(FailPlan::from_env_values("s", None)), 1);
        assert_eq!(fire_hit(FailPlan::from_env_values("s", Some("4"))), 4);
        assert_eq!(fire_hit(FailPlan::from_env_values("s", Some(" 2 "))), 2);
        assert_eq!(fire_hit(FailPlan::from_env_values("s", Some("junk"))), 1);
        assert_eq!(fire_hit(FailPlan::from_env_values("s", Some("0"))), 1, "0 clamps to 1");
    }

    #[test]
    fn delay_returns_false_after_sleeping() {
        let plan = FailPlan::new(7).rule(FailRule::new("slow").delays_ms(1));
        let t0 = std::time::Instant::now();
        assert!(!plan.check("slow"));
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }
}
