//! Deterministic structure-aware stream mutation.
//!
//! `faultstorm` and the shared robustness suite need *thousands* of
//! corrupted inputs whose generation is exactly reproducible from a seed —
//! no time-seeded fuzzing, so a CI failure replays locally from the printed
//! seed alone. The operations are chosen for compressed-container formats:
//! single bit flips (bit-rot), truncations (power loss mid-write), slice
//! duplication/deletion (bad DMA scatter-gather), 16-bit length-field
//! overwrites (corrupted stored-block LEN/NLEN, gzip XLEN), and slice swaps
//! (reordered flash pages).

/// Which operation produced a [`Mutant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// One bit flipped in place.
    BitFlip,
    /// One byte overwritten with a random value.
    ByteSet,
    /// Stream cut to a shorter prefix.
    Truncate,
    /// A short slice copied and inserted elsewhere.
    DuplicateSlice,
    /// A short slice removed.
    DeleteSlice,
    /// A random 16-bit little-endian value written over two bytes
    /// (length-field corruption).
    LengthField,
    /// Two equal-length slices exchanged.
    SwapSlices,
    /// A frame's sync magic overwritten (frame-targeted).
    SyncSmash,
    /// A non-sync header byte corrupted, invalidating the header CRC
    /// (frame-targeted).
    HeaderCorrupt,
    /// A stored payload byte corrupted, invalidating the payload CRC
    /// (frame-targeted).
    PayloadCorrupt,
    /// Stream cut somewhere inside a frame's extent (frame-targeted).
    TruncateMidFrame,
    /// A non-sync byte of the seek-index record's header corrupted
    /// (index-targeted).
    IndexHeaderCorrupt,
    /// A byte of the seek-index payload corrupted — magic, counts, or an
    /// entry (index-targeted).
    IndexPayloadCorrupt,
    /// The index's trailing self-offset word overwritten with a random
    /// value, sending readers to a lying location (index-targeted).
    IndexPointerSmash,
    /// Stream cut inside the index record's extent — a torn index
    /// (index-targeted).
    IndexTruncate,
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MutationKind::BitFlip => "bit-flip",
            MutationKind::ByteSet => "byte-set",
            MutationKind::Truncate => "truncate",
            MutationKind::DuplicateSlice => "dup-slice",
            MutationKind::DeleteSlice => "del-slice",
            MutationKind::LengthField => "len-field",
            MutationKind::SwapSlices => "swap-slices",
            MutationKind::SyncSmash => "sync-smash",
            MutationKind::HeaderCorrupt => "header-corrupt",
            MutationKind::PayloadCorrupt => "payload-corrupt",
            MutationKind::TruncateMidFrame => "truncate-mid-frame",
            MutationKind::IndexHeaderCorrupt => "index-header-corrupt",
            MutationKind::IndexPayloadCorrupt => "index-payload-corrupt",
            MutationKind::IndexPointerSmash => "index-pointer-smash",
            MutationKind::IndexTruncate => "index-truncate",
        };
        f.write_str(name)
    }
}

/// One corrupted stream plus the operation that made it.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The corrupted bytes.
    pub bytes: Vec<u8>,
    /// The operation applied.
    pub kind: MutationKind,
    /// Index (into the caller's site list) of the frame the operation
    /// targeted; `None` for whole-stream operations.
    pub frame: Option<usize>,
}

/// Byte extent of one frame, supplied by the caller of
/// [`StreamMutator::mutate_framed`]. The faults crate stays
/// format-agnostic: it never parses the stream, it only aims at the spans
/// the caller mapped out (e.g. with `lzfpga-container`'s `frame_spans`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSite {
    /// Offset of the frame header's first byte.
    pub header_start: usize,
    /// Offset of the first payload byte (header end). A payload-less site
    /// (`payload_start == end`, e.g. a trailer record) degrades payload
    /// corruption to header corruption.
    pub payload_start: usize,
    /// Offset one past the frame's last byte.
    pub end: usize,
}

/// Seeded (xorshift64) mutator; every call advances the PRNG, so a fixed
/// seed yields a fixed mutant sequence over a fixed corpus.
#[derive(Debug, Clone)]
pub struct StreamMutator {
    state: u64,
}

impl StreamMutator {
    /// A mutator from `seed` (0 remapped — xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0xD1B5_4A32_D192_ED03 } else { seed } }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A uniform-ish draw in `0..n` (`n` must be non-zero).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Corrupt `base` with one randomly chosen operation.
    ///
    /// Always returns a stream (possibly empty after truncation); for very
    /// short inputs the slice operations degrade to byte-level ones.
    pub fn mutate(&mut self, base: &[u8]) -> Mutant {
        if base.is_empty() {
            return Mutant {
                bytes: vec![self.next() as u8],
                kind: MutationKind::ByteSet,
                frame: None,
            };
        }
        let n = base.len();
        let op = self.below(7);
        match op {
            0 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] ^= 1 << self.below(8);
                Mutant { bytes, kind: MutationKind::BitFlip, frame: None }
            }
            1 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] = self.next() as u8;
                Mutant { bytes, kind: MutationKind::ByteSet, frame: None }
            }
            2 => {
                let keep = self.below(n);
                Mutant { bytes: base[..keep].to_vec(), kind: MutationKind::Truncate, frame: None }
            }
            3 => {
                let start = self.below(n);
                let len = 1 + self.below((n - start).min(64));
                let insert_at = self.below(n);
                let mut bytes = Vec::with_capacity(n + len);
                bytes.extend_from_slice(&base[..insert_at]);
                bytes.extend_from_slice(&base[start..start + len]);
                bytes.extend_from_slice(&base[insert_at..]);
                Mutant { bytes, kind: MutationKind::DuplicateSlice, frame: None }
            }
            4 => {
                let start = self.below(n);
                let len = 1 + self.below((n - start).min(64));
                let mut bytes = base[..start].to_vec();
                bytes.extend_from_slice(&base[start + len..]);
                Mutant { bytes, kind: MutationKind::DeleteSlice, frame: None }
            }
            5 if n >= 2 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n - 1);
                let field = (self.next() as u16).to_le_bytes();
                bytes[pos] = field[0];
                bytes[pos + 1] = field[1];
                Mutant { bytes, kind: MutationKind::LengthField, frame: None }
            }
            6 if n >= 2 => {
                let len = 1 + self.below(n.min(32) / 2);
                let a = self.below(n - len + 1);
                let b = self.below(n - len + 1);
                let mut bytes = base.to_vec();
                for k in 0..len {
                    bytes.swap(a + k, b + k);
                }
                Mutant { bytes, kind: MutationKind::SwapSlices, frame: None }
            }
            _ => {
                // Fallback for inputs too short for the structured ops.
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] = bytes[pos].wrapping_add(1);
                Mutant { bytes, kind: MutationKind::ByteSet, frame: None }
            }
        }
    }

    /// Corrupt `base` with one frame-targeted operation aimed at a random
    /// site from `sites`: smash its sync magic, corrupt a non-sync header
    /// byte, corrupt a payload byte, or truncate the stream inside the
    /// frame. Falls back to [`StreamMutator::mutate`] when `sites` is
    /// empty or contains out-of-range extents.
    pub fn mutate_framed(&mut self, base: &[u8], sites: &[FrameSite]) -> Mutant {
        if sites.is_empty() {
            return self.mutate(base);
        }
        let idx = self.below(sites.len());
        let site = sites[idx];
        let sane = site.header_start < site.payload_start
            && site.payload_start <= site.end
            && site.end <= base.len();
        if !sane {
            return self.mutate(base);
        }
        // A corrupting XOR mask must be non-zero or the mutant is a no-op.
        let mask = 1 + (self.next() % 255) as u8;
        let mut op = self.below(4);
        if op == 2 && site.payload_start == site.end {
            // Payload-less site (trailer record): degrade to a header hit.
            op = 1;
        }
        match op {
            0 => {
                let mut bytes = base.to_vec();
                let sync_end = (site.header_start + 4).min(site.payload_start);
                let pos = site.header_start + self.below(sync_end - site.header_start);
                bytes[pos] ^= mask;
                Mutant { bytes, kind: MutationKind::SyncSmash, frame: Some(idx) }
            }
            1 => {
                let mut bytes = base.to_vec();
                let body_start = (site.header_start + 4).min(site.payload_start - 1);
                let pos = body_start + self.below(site.payload_start - body_start);
                bytes[pos] ^= mask;
                Mutant { bytes, kind: MutationKind::HeaderCorrupt, frame: Some(idx) }
            }
            2 => {
                let mut bytes = base.to_vec();
                let pos = site.payload_start + self.below(site.end - site.payload_start);
                bytes[pos] ^= mask;
                Mutant { bytes, kind: MutationKind::PayloadCorrupt, frame: Some(idx) }
            }
            _ => {
                let keep = site.header_start + self.below(site.end - site.header_start);
                Mutant {
                    bytes: base[..keep].to_vec(),
                    kind: MutationKind::TruncateMidFrame,
                    frame: Some(idx),
                }
            }
        }
    }

    /// Corrupt `base` with one operation aimed at a seek-index record's
    /// extent (`site`): hit its header, hit its payload, overwrite the
    /// trailing self-offset word with a random pointer, or tear the stream
    /// inside it. The crate stays format-agnostic — the caller maps the
    /// index extent out (e.g. from `lzfpga-container`'s `check_structure`).
    /// Falls back to [`StreamMutator::mutate`] on an insane extent.
    pub fn mutate_index(&mut self, base: &[u8], site: FrameSite) -> Mutant {
        let sane = site.header_start < site.payload_start
            && site.payload_start < site.end
            && site.end <= base.len();
        if !sane {
            return self.mutate(base);
        }
        let mask = 1 + (self.next() % 255) as u8;
        match self.below(4) {
            0 => {
                let mut bytes = base.to_vec();
                let body_start = (site.header_start + 4).min(site.payload_start - 1);
                let pos = body_start + self.below(site.payload_start - body_start);
                bytes[pos] ^= mask;
                Mutant { bytes, kind: MutationKind::IndexHeaderCorrupt, frame: None }
            }
            1 => {
                let mut bytes = base.to_vec();
                let pos = site.payload_start + self.below(site.end - site.payload_start);
                bytes[pos] ^= mask;
                Mutant { bytes, kind: MutationKind::IndexPayloadCorrupt, frame: None }
            }
            2 if site.end - site.payload_start >= 8 => {
                let mut bytes = base.to_vec();
                let word = self.next().to_le_bytes();
                bytes[site.end - 8..site.end].copy_from_slice(&word);
                Mutant { bytes, kind: MutationKind::IndexPointerSmash, frame: None }
            }
            _ => {
                let keep = site.header_start + 1 + self.below(site.end - site.header_start - 1);
                Mutant {
                    bytes: base[..keep].to_vec(),
                    kind: MutationKind::IndexTruncate,
                    frame: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutants() {
        let base: Vec<u8> = (0..200u8).collect();
        let mut a = StreamMutator::new(0xC0FFEE);
        let mut b = StreamMutator::new(0xC0FFEE);
        for _ in 0..500 {
            let ma = a.mutate(&base);
            let mb = b.mutate(&base);
            assert_eq!(ma.bytes, mb.bytes);
            assert_eq!(ma.kind, mb.kind);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base: Vec<u8> = (0..200u8).collect();
        let a: Vec<Vec<u8>> = {
            let mut m = StreamMutator::new(1);
            (0..50).map(|_| m.mutate(&base).bytes).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut m = StreamMutator::new(2);
            (0..50).map(|_| m.mutate(&base).bytes).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn every_operation_kind_appears() {
        let base: Vec<u8> = (0..100u8).cycle().take(1_000).collect();
        let mut m = StreamMutator::new(99);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(format!("{}", m.mutate(&base).kind));
        }
        for kind in [
            "bit-flip",
            "byte-set",
            "truncate",
            "dup-slice",
            "del-slice",
            "len-field",
            "swap-slices",
        ] {
            assert!(seen.contains(kind), "operation {kind} never chosen");
        }
    }

    #[test]
    fn tiny_and_empty_inputs_survive() {
        let mut m = StreamMutator::new(3);
        for base in [&[][..], &[0x42][..], &[1, 2][..]] {
            for _ in 0..200 {
                let mutant = m.mutate(base);
                assert!(mutant.bytes.len() <= base.len().max(1) + 64);
            }
        }
    }

    #[test]
    fn framed_mutation_stays_inside_the_chosen_frame() {
        let base: Vec<u8> = (0..250u8).cycle().take(600).collect();
        let sites = [
            FrameSite { header_start: 0, payload_start: 26, end: 200 },
            FrameSite { header_start: 200, payload_start: 226, end: 574 },
            FrameSite { header_start: 574, payload_start: 600, end: 600 }, // trailer
        ];
        let mut m = StreamMutator::new(0xF00D);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let mutant = m.mutate_framed(&base, &sites);
            let idx = mutant.frame.expect("framed ops always name their target");
            let site = sites[idx];
            kinds.insert(format!("{}", mutant.kind));
            match mutant.kind {
                MutationKind::TruncateMidFrame => {
                    assert!(mutant.bytes.len() >= site.header_start);
                    assert!(mutant.bytes.len() < site.end);
                    assert_eq!(mutant.bytes[..], base[..mutant.bytes.len()]);
                }
                MutationKind::SyncSmash
                | MutationKind::HeaderCorrupt
                | MutationKind::PayloadCorrupt => {
                    assert_eq!(mutant.bytes.len(), base.len());
                    let diffs: Vec<usize> =
                        (0..base.len()).filter(|&i| mutant.bytes[i] != base[i]).collect();
                    assert_eq!(diffs.len(), 1, "exactly one corrupted byte");
                    let pos = diffs[0];
                    let (lo, hi) = match mutant.kind {
                        MutationKind::SyncSmash => (site.header_start, site.header_start + 4),
                        MutationKind::HeaderCorrupt => (site.header_start + 4, site.payload_start),
                        _ => (site.payload_start, site.end),
                    };
                    assert!(
                        (lo..hi).contains(&pos),
                        "{}: byte {pos} not in {lo}..{hi}",
                        mutant.kind
                    );
                }
                other => panic!("unexpected framed op {other}"),
            }
        }
        for kind in ["sync-smash", "header-corrupt", "payload-corrupt", "truncate-mid-frame"] {
            assert!(kinds.contains(kind), "operation {kind} never chosen");
        }
        // The trailer site has no payload: payload hits degrade to header
        // hits, so no PayloadCorrupt mutant may target frame 2 — checked
        // implicitly by the range assertion above.
    }

    #[test]
    fn index_mutation_stays_inside_the_index_extent() {
        let base: Vec<u8> = (0..250u8).cycle().take(600).collect();
        // Pretend bytes 400..574 are an index record (26-byte header).
        let site = FrameSite { header_start: 400, payload_start: 426, end: 574 };
        let mut m = StreamMutator::new(0xBEEF);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let mutant = m.mutate_index(&base, site);
            kinds.insert(format!("{}", mutant.kind));
            match mutant.kind {
                MutationKind::IndexTruncate => {
                    assert!(mutant.bytes.len() > site.header_start);
                    assert!(mutant.bytes.len() < site.end);
                    assert_eq!(mutant.bytes[..], base[..mutant.bytes.len()]);
                }
                MutationKind::IndexPointerSmash => {
                    assert_eq!(mutant.bytes.len(), base.len());
                    assert_eq!(mutant.bytes[..site.end - 8], base[..site.end - 8]);
                    assert_eq!(mutant.bytes[site.end..], base[site.end..]);
                }
                MutationKind::IndexHeaderCorrupt | MutationKind::IndexPayloadCorrupt => {
                    assert_eq!(mutant.bytes.len(), base.len());
                    let diffs: Vec<usize> =
                        (0..base.len()).filter(|&i| mutant.bytes[i] != base[i]).collect();
                    assert_eq!(diffs.len(), 1, "exactly one corrupted byte");
                    let (lo, hi) = if mutant.kind == MutationKind::IndexHeaderCorrupt {
                        (site.header_start + 4, site.payload_start)
                    } else {
                        (site.payload_start, site.end)
                    };
                    assert!((lo..hi).contains(&diffs[0]));
                }
                other => panic!("unexpected index op {other}"),
            }
        }
        for kind in [
            "index-header-corrupt",
            "index-payload-corrupt",
            "index-pointer-smash",
            "index-truncate",
        ] {
            assert!(kinds.contains(kind), "operation {kind} never chosen");
        }
        // An insane extent falls back to whole-stream mutation.
        let bogus = FrameSite { header_start: 500, payload_start: 400, end: 700 };
        assert_eq!(m.mutate_index(&base, bogus).frame, None);
    }

    #[test]
    fn framed_mutation_without_sites_falls_back() {
        let base: Vec<u8> = (0..100u8).collect();
        let mut a = StreamMutator::new(77);
        let mut b = StreamMutator::new(77);
        for _ in 0..50 {
            let ma = a.mutate_framed(&base, &[]);
            let mb = b.mutate(&base);
            assert_eq!(ma.bytes, mb.bytes);
            assert_eq!(ma.kind, mb.kind);
            assert_eq!(ma.frame, None);
        }
        // Out-of-range sites also fall back instead of panicking.
        let bogus = [FrameSite { header_start: 90, payload_start: 120, end: 500 }];
        for _ in 0..50 {
            let mutant = a.mutate_framed(&base, &bogus);
            assert_eq!(mutant.frame, None);
        }
    }

    #[test]
    fn mutants_usually_differ_from_the_base() {
        let base: Vec<u8> = (0..=255u8).collect();
        let mut m = StreamMutator::new(1234);
        let changed = (0..1_000).filter(|_| m.mutate(&base).bytes != base).count();
        // Swap of identical slices or a full-length truncate can no-op;
        // that must stay rare.
        assert!(changed > 950, "only {changed}/1000 mutants changed the stream");
    }
}
