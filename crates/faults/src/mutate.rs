//! Deterministic structure-aware stream mutation.
//!
//! `faultstorm` and the shared robustness suite need *thousands* of
//! corrupted inputs whose generation is exactly reproducible from a seed —
//! no time-seeded fuzzing, so a CI failure replays locally from the printed
//! seed alone. The operations are chosen for compressed-container formats:
//! single bit flips (bit-rot), truncations (power loss mid-write), slice
//! duplication/deletion (bad DMA scatter-gather), 16-bit length-field
//! overwrites (corrupted stored-block LEN/NLEN, gzip XLEN), and slice swaps
//! (reordered flash pages).

/// Which operation produced a [`Mutant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// One bit flipped in place.
    BitFlip,
    /// One byte overwritten with a random value.
    ByteSet,
    /// Stream cut to a shorter prefix.
    Truncate,
    /// A short slice copied and inserted elsewhere.
    DuplicateSlice,
    /// A short slice removed.
    DeleteSlice,
    /// A random 16-bit little-endian value written over two bytes
    /// (length-field corruption).
    LengthField,
    /// Two equal-length slices exchanged.
    SwapSlices,
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MutationKind::BitFlip => "bit-flip",
            MutationKind::ByteSet => "byte-set",
            MutationKind::Truncate => "truncate",
            MutationKind::DuplicateSlice => "dup-slice",
            MutationKind::DeleteSlice => "del-slice",
            MutationKind::LengthField => "len-field",
            MutationKind::SwapSlices => "swap-slices",
        };
        f.write_str(name)
    }
}

/// One corrupted stream plus the operation that made it.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The corrupted bytes.
    pub bytes: Vec<u8>,
    /// The operation applied.
    pub kind: MutationKind,
}

/// Seeded (xorshift64) mutator; every call advances the PRNG, so a fixed
/// seed yields a fixed mutant sequence over a fixed corpus.
#[derive(Debug, Clone)]
pub struct StreamMutator {
    state: u64,
}

impl StreamMutator {
    /// A mutator from `seed` (0 remapped — xorshift has no zero state).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0xD1B5_4A32_D192_ED03 } else { seed } }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A uniform-ish draw in `0..n` (`n` must be non-zero).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Corrupt `base` with one randomly chosen operation.
    ///
    /// Always returns a stream (possibly empty after truncation); for very
    /// short inputs the slice operations degrade to byte-level ones.
    pub fn mutate(&mut self, base: &[u8]) -> Mutant {
        if base.is_empty() {
            return Mutant { bytes: vec![self.next() as u8], kind: MutationKind::ByteSet };
        }
        let n = base.len();
        let op = self.below(7);
        match op {
            0 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] ^= 1 << self.below(8);
                Mutant { bytes, kind: MutationKind::BitFlip }
            }
            1 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] = self.next() as u8;
                Mutant { bytes, kind: MutationKind::ByteSet }
            }
            2 => {
                let keep = self.below(n);
                Mutant { bytes: base[..keep].to_vec(), kind: MutationKind::Truncate }
            }
            3 => {
                let start = self.below(n);
                let len = 1 + self.below((n - start).min(64));
                let insert_at = self.below(n);
                let mut bytes = Vec::with_capacity(n + len);
                bytes.extend_from_slice(&base[..insert_at]);
                bytes.extend_from_slice(&base[start..start + len]);
                bytes.extend_from_slice(&base[insert_at..]);
                Mutant { bytes, kind: MutationKind::DuplicateSlice }
            }
            4 => {
                let start = self.below(n);
                let len = 1 + self.below((n - start).min(64));
                let mut bytes = base[..start].to_vec();
                bytes.extend_from_slice(&base[start + len..]);
                Mutant { bytes, kind: MutationKind::DeleteSlice }
            }
            5 if n >= 2 => {
                let mut bytes = base.to_vec();
                let pos = self.below(n - 1);
                let field = (self.next() as u16).to_le_bytes();
                bytes[pos] = field[0];
                bytes[pos + 1] = field[1];
                Mutant { bytes, kind: MutationKind::LengthField }
            }
            6 if n >= 2 => {
                let len = 1 + self.below(n.min(32) / 2);
                let a = self.below(n - len + 1);
                let b = self.below(n - len + 1);
                let mut bytes = base.to_vec();
                for k in 0..len {
                    bytes.swap(a + k, b + k);
                }
                Mutant { bytes, kind: MutationKind::SwapSlices }
            }
            _ => {
                // Fallback for inputs too short for the structured ops.
                let mut bytes = base.to_vec();
                let pos = self.below(n);
                bytes[pos] = bytes[pos].wrapping_add(1);
                Mutant { bytes, kind: MutationKind::ByteSet }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutants() {
        let base: Vec<u8> = (0..200u8).collect();
        let mut a = StreamMutator::new(0xC0FFEE);
        let mut b = StreamMutator::new(0xC0FFEE);
        for _ in 0..500 {
            let ma = a.mutate(&base);
            let mb = b.mutate(&base);
            assert_eq!(ma.bytes, mb.bytes);
            assert_eq!(ma.kind, mb.kind);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base: Vec<u8> = (0..200u8).collect();
        let a: Vec<Vec<u8>> = {
            let mut m = StreamMutator::new(1);
            (0..50).map(|_| m.mutate(&base).bytes).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut m = StreamMutator::new(2);
            (0..50).map(|_| m.mutate(&base).bytes).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn every_operation_kind_appears() {
        let base: Vec<u8> = (0..100u8).cycle().take(1_000).collect();
        let mut m = StreamMutator::new(99);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(format!("{}", m.mutate(&base).kind));
        }
        for kind in [
            "bit-flip",
            "byte-set",
            "truncate",
            "dup-slice",
            "del-slice",
            "len-field",
            "swap-slices",
        ] {
            assert!(seen.contains(kind), "operation {kind} never chosen");
        }
    }

    #[test]
    fn tiny_and_empty_inputs_survive() {
        let mut m = StreamMutator::new(3);
        for base in [&[][..], &[0x42][..], &[1, 2][..]] {
            for _ in 0..200 {
                let mutant = m.mutate(base);
                assert!(mutant.bytes.len() <= base.len().max(1) + 64);
            }
        }
    }

    #[test]
    fn mutants_usually_differ_from_the_base() {
        let base: Vec<u8> = (0..=255u8).collect();
        let mut m = StreamMutator::new(1234);
        let changed = (0..1_000).filter(|_| m.mutate(&base).bytes != base).count();
        // Swap of identical slices or a full-length truncate can no-op;
        // that must stay rare.
        assert!(changed > 950, "only {changed}/1000 mutants changed the stream");
    }
}
