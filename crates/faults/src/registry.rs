//! The crash-site registry: every failpoint the crash drill may arm.
//!
//! Crash sites are contractual in a way ordinary failpoints are not: the
//! `crashstorm` drill arms them by name from outside the process (via
//! [`CRASH_SITE_ENV`]), operators read about them in DESIGN §14, and the
//! recovery state machine promises what each one may lose. This module is
//! the single source of truth; `tests/crash_sites.rs` asserts the DESIGN
//! table, the server code, and this list never drift apart.
//!
//! [`CRASH_SITE_ENV`]: crate::plan::CRASH_SITE_ENV

/// Site name: crash after the session journal record is written and
/// synced, before the session directory entry itself is made durable.
pub const SERVER_JOURNAL_APPEND: &str = "server.journal.append";

/// Site name: crash inside the durable frame sink's flush, after the
/// frame's bytes reach the file and `sync_data` returns.
pub const SERVER_FRAME_DURABLE: &str = "server.frame.durable";

/// Site name: crash after the finished container is synced, immediately
/// before the `out.part` → `out` rename.
pub const SERVER_SESSION_PROMOTE: &str = "server.session.promote";

/// One armable crash site: its name plus the recovery contract the
/// documentation states for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSite {
    /// The failpoint name, as armed via `LZFPGA_CRASH_SITE`.
    pub name: &'static str,
    /// Where in the session write path the site sits.
    pub stage: &'static str,
    /// What a crash at this point may lose (never: acknowledged bytes).
    pub may_lose: &'static str,
}

/// Every crash site the server write path can arm, in write-path order.
pub const CRASH_SITES: &[CrashSite] = &[
    CrashSite {
        name: SERVER_JOURNAL_APPEND,
        stage: "session journal record written and synced",
        may_lose: "the whole session (journal may not survive; client holds no token yet)",
    },
    CrashSite {
        name: SERVER_FRAME_DURABLE,
        stage: "per-frame durable flush of the staged container",
        may_lose: "frames after the last durable flush (resume re-compresses them)",
    },
    CrashSite {
        name: SERVER_SESSION_PROMOTE,
        stage: "finished container synced, before the out.part rename",
        may_lose: "only the rename (resume finds a complete prefix and promotes it)",
    },
];

/// Whether `name` is a registered crash site.
pub fn is_crash_site(name: &str) -> bool {
    CRASH_SITES.iter().any(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_lookup_works() {
        for (i, a) in CRASH_SITES.iter().enumerate() {
            assert!(is_crash_site(a.name));
            for b in &CRASH_SITES[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate crash site");
            }
        }
        assert!(!is_crash_site("server.no.such.site"));
    }
}
