//! Fault injection and hostile-input tooling for the whole workspace.
//!
//! The paper's hardware never wedges on bad input: the decompressor FSM
//! raises explicit error flags (window exceeded, bad symbol) and the DMA
//! engine can always be re-armed. This crate gives the software stack the
//! same discipline, plus the test harness to prove it:
//!
//! * **[`plan`]** — named **failpoints** threaded through the hot paths
//!   behind the same zero-cost-generic pattern as the telemetry probes:
//!   production code runs with [`NoFaults`] (every check monomorphizes to
//!   an inline `false`), tests hand in a [`FailPlan`] that injects typed
//!   errors, panics, delays or whole-process crashes at chosen sites and
//!   hit counts, optionally gated by a seeded PRNG.
//! * **[`registry`]** — the contractual list of crash sites the
//!   crash-durability drill may arm by name from outside the process;
//!   kept drift-free against DESIGN §14 by `tests/crash_sites.rs`.
//! * **[`report`]** — the per-job [`FailureReport`]: how many chunk
//!   attempts ran, what was retried, which chunks degraded to the
//!   reference engine, which faults actually fired. Renders to JSON for
//!   the telemetry sink.
//! * **[`mutate`]** — a deterministic, structure-aware stream mutator
//!   (bit flips, truncations, slice duplication/deletion, length-field
//!   corruption) used by the `faultstorm` harness and the shared
//!   robustness suite to hammer every decode path with thousands of
//!   reproducible corrupted streams.
//!
//! Everything here is plain `std`; like `lzfpga-telemetry` this is a leaf
//! crate any other crate can depend on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mutate;
pub mod plan;
pub mod registry;
pub mod report;

pub use mutate::{FrameSite, Mutant, MutationKind, StreamMutator};
pub use plan::{
    FailPlan, FailRule, Failpoints, FaultAction, FaultEvent, InjectedFault, NoFaults,
    CRASH_HIT_ENV, CRASH_SITE_ENV,
};
pub use registry::{CrashSite, CRASH_SITES};
pub use report::FailureReport;
