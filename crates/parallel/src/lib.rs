//! Chunk-parallel compression over multiple compressor instances.
//!
//! The paper puts **one** LZSS engine next to the CPU; a Virtex-5 has room
//! for several (Table II: ~5-7 % of the chip each), and a logging
//! aggregator with multiple input channels can run them side by side. This
//! crate models that scale-out the way `pigz` does for software deflate:
//!
//! * the input splits into fixed-size **chunks**, each compressed by an
//!   independent engine (fresh dictionary — chunk boundaries lose a little
//!   ratio, quantified in tests);
//! * every chunk becomes a run of non-final Deflate blocks; concatenated
//!   they form **one standard zlib stream** (matches never cross chunk
//!   boundaries, so block concatenation is sound), with a single Adler-32
//!   over the whole input;
//! * the output is **bit-identical for any worker count** — parallelism is
//!   an implementation detail, never a format change.
//!
//! Host-side parallelism uses `crossbeam::scope` with a shared atomic work
//! queue (no work stealing needed — chunks are uniform); the *modelled*
//! FPGA speedup assigns chunks round-robin to `instances` engines and takes
//! the makespan, reproducing the near-linear scaling a multi-engine design
//! gets until the DMA bandwidth saturates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

use lzfpga_core::config::CLOCK_HZ;
use lzfpga_core::{HwCompressor, HwConfig};
use lzfpga_deflate::adler32::adler32;
use lzfpga_deflate::encoder::{BlockKind, DeflateEncoder};
use lzfpga_deflate::token::Token;
use lzfpga_deflate::zlib::zlib_header;

/// Parallel compression configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Chunk size in bytes (each chunk gets a fresh dictionary).
    pub chunk_bytes: usize,
    /// Host worker threads (0 = all available cores).
    pub workers: usize,
    /// Modelled hardware engine instances on the FPGA.
    pub instances: usize,
    /// Per-engine configuration.
    pub hw: HwConfig,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 256 * 1024,
            workers: 0,
            instances: 4,
            hw: HwConfig::paper_fast(),
        }
    }
}

impl ParallelConfig {
    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics on a zero chunk size or zero instances.
    pub fn validate(&self) {
        assert!(self.chunk_bytes >= 4_096, "chunks below 4 KiB waste all ratio");
        assert!(self.instances >= 1, "at least one engine instance");
        self.hw.validate();
    }
}

/// Per-chunk outcome.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Chunk index.
    pub index: usize,
    /// Input bytes in this chunk.
    pub input_bytes: u64,
    /// Engine cycles spent (DMA setup included, as in Table I).
    pub cycles: u64,
    /// Tokens produced.
    pub tokens: u64,
}

/// Result of a parallel compression run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// The single zlib stream covering the whole input.
    pub compressed: Vec<u8>,
    /// Per-chunk engine metrics, in chunk order.
    pub chunks: Vec<ChunkReport>,
    /// Makespan in cycles when the chunks run on `instances` engines
    /// (greedy round-robin assignment in chunk order).
    pub makespan_cycles: u64,
    /// Total engine cycles across all chunks (the 1-instance makespan).
    pub total_cycles: u64,
    /// Input size.
    pub input_bytes: u64,
}

impl ParallelReport {
    /// Compression ratio (input / output).
    pub fn ratio(&self) -> f64 {
        if self.compressed.is_empty() {
            0.0
        } else {
            self.input_bytes as f64 / self.compressed.len() as f64
        }
    }

    /// Modelled aggregate throughput of the multi-engine design, MB/s.
    pub fn mb_per_s(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.input_bytes as f64 / 1e6 * CLOCK_HZ / self.makespan_cycles as f64
        }
    }

    /// Modelled speedup over a single engine.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.total_cycles as f64 / self.makespan_cycles as f64
        }
    }
}

/// Compress `data` chunk-parallel into one standard zlib stream.
///
/// The output bytes depend only on `cfg.chunk_bytes` and `cfg.hw` — never
/// on `cfg.workers` or `cfg.instances`.
pub fn compress_parallel(data: &[u8], cfg: &ParallelConfig) -> ParallelReport {
    cfg.validate();
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(cfg.chunk_bytes).collect()
    };
    let n_chunks = chunks.len();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        cfg.workers
    }
    .min(n_chunks)
    .max(1);

    // Compress chunks in parallel; results land in their slots.
    let mut slots: Vec<Option<(Vec<Token>, u64)>> = vec![None; n_chunks];
    {
        let next = AtomicUsize::new(0);
        let mut slot_refs: Vec<_> = slots.iter_mut().collect();
        // Workers pull chunk indices from a shared atomic counter and send
        // results over a channel; the scope's owner thread files them into
        // their slots, so no locking is needed anywhere.
        let (tx, rx) = crossbeam::channel::unbounded();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let chunks = &chunks;
                let hw = cfg.hw;
                s.spawn(move |_| {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= chunks.len() {
                            break;
                        }
                        let rep = HwCompressor::new(hw).compress(chunks[i]);
                        tx.send((i, rep.tokens, rep.cycles)).expect("collector alive");
                    }
                });
            }
            drop(tx);
            for (i, tokens, cycles) in rx {
                *slot_refs[i] = Some((tokens, cycles));
            }
            // Scope join happens here; `slot_refs` borrow ends with it.
        })
        .expect("worker panicked");
    }

    // Stitch: zlib header, per-chunk block runs, single Adler trailer.
    let mut enc = DeflateEncoder::new();
    let mut reports = Vec::with_capacity(n_chunks);
    for (i, slot) in slots.into_iter().enumerate() {
        let (tokens, cycles) = slot.expect("every chunk compressed");
        enc.write_block(&tokens, BlockKind::FixedHuffman, i + 1 == n_chunks);
        reports.push(ChunkReport {
            index: i,
            input_bytes: chunks[i].len() as u64,
            cycles,
            tokens: tokens.len() as u64,
        });
    }
    let mut compressed = zlib_header(cfg.hw.window_size.max(256), 1).to_vec();
    compressed.extend_from_slice(&enc.finish());
    compressed.extend_from_slice(&adler32(data).to_be_bytes());

    // Makespan on `instances` engines, chunks assigned round-robin.
    let mut engine_load = vec![0u64; cfg.instances];
    for r in &reports {
        engine_load[r.index % cfg.instances] += r.cycles;
    }
    let makespan = engine_load.into_iter().max().unwrap_or(0);
    let total: u64 = reports.iter().map(|r| r.cycles).sum();

    ParallelReport {
        compressed,
        chunks: reports,
        makespan_cycles: makespan,
        total_cycles: total,
        input_bytes: data.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lzfpga_core::pipeline::compress_to_zlib;
    use lzfpga_deflate::zlib::zlib_decompress;
    use lzfpga_workloads::{generate, Corpus};

    fn cfg(chunk: usize, workers: usize, instances: usize) -> ParallelConfig {
        ParallelConfig {
            chunk_bytes: chunk,
            workers,
            instances,
            hw: HwConfig::paper_fast(),
        }
    }

    #[test]
    fn output_is_valid_zlib() {
        let data = generate(Corpus::Wiki, 5, 700_000);
        let rep = compress_parallel(&data, &cfg(128 * 1024, 0, 4));
        assert_eq!(zlib_decompress(&rep.compressed).unwrap(), data);
        assert_eq!(rep.chunks.len(), 6);
    }

    #[test]
    fn worker_count_never_changes_the_bytes() {
        let data = generate(Corpus::X2e, 9, 400_000);
        let baseline = compress_parallel(&data, &cfg(64 * 1024, 1, 1));
        for workers in [2usize, 3, 8] {
            let rep = compress_parallel(&data, &cfg(64 * 1024, workers, workers));
            assert_eq!(rep.compressed, baseline.compressed, "workers = {workers}");
        }
    }

    #[test]
    fn single_chunk_matches_the_pipeline_exactly() {
        let data = generate(Corpus::LogLines, 3, 100_000);
        let par = compress_parallel(&data, &cfg(1 << 20, 2, 2));
        let single = compress_to_zlib(&data, &HwConfig::paper_fast());
        assert_eq!(par.compressed, single.compressed);
    }

    #[test]
    fn chunking_costs_a_little_ratio() {
        let data = generate(Corpus::Wiki, 7, 600_000);
        let whole = compress_parallel(&data, &cfg(1 << 20, 0, 1));
        let chopped = compress_parallel(&data, &cfg(16 * 1024, 0, 1));
        assert!(chopped.compressed.len() >= whole.compressed.len());
        // ... but only a little: the dictionary warms up in a few KB.
        assert!(
            (chopped.compressed.len() as f64) < whole.compressed.len() as f64 * 1.10,
            "{} vs {}",
            chopped.compressed.len(),
            whole.compressed.len()
        );
    }

    #[test]
    fn multi_engine_speedup_is_near_linear() {
        let data = generate(Corpus::Wiki, 2, 1_200_000);
        let rep4 = compress_parallel(&data, &cfg(64 * 1024, 0, 4));
        assert!(rep4.speedup() > 3.0, "speedup {}", rep4.speedup());
        assert!(rep4.mb_per_s() > 120.0, "{} MB/s", rep4.mb_per_s());
        let rep1 = compress_parallel(&data, &cfg(64 * 1024, 0, 1));
        assert_eq!(rep1.makespan_cycles, rep1.total_cycles);
    }

    #[test]
    fn empty_input_yields_a_valid_empty_stream() {
        let rep = compress_parallel(b"", &cfg(8 * 1024, 2, 2));
        assert_eq!(zlib_decompress(&rep.compressed).unwrap(), b"");
    }

    #[test]
    #[should_panic(expected = "chunks below 4 KiB")]
    fn tiny_chunks_rejected() {
        compress_parallel(b"x", &cfg(1024, 1, 1));
    }

    #[test]
    fn cycle_accounting_sums() {
        let data = generate(Corpus::SensorFrames, 4, 300_000);
        let rep = compress_parallel(&data, &cfg(64 * 1024, 0, 3));
        let sum: u64 = rep.chunks.iter().map(|c| c.cycles).sum();
        assert_eq!(sum, rep.total_cycles);
        assert!(rep.makespan_cycles <= rep.total_cycles);
        assert!(rep.makespan_cycles >= rep.total_cycles / 3);
    }
}
