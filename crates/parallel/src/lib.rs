//! Chunk-parallel compression over multiple compressor instances.
//!
//! The paper puts **one** LZSS engine next to the CPU; a Virtex-5 has room
//! for several (Table II: ~5-7 % of the chip each), and a logging
//! aggregator with multiple input channels can run them side by side. This
//! crate models that scale-out the way `pigz` does for software deflate:
//!
//! * the input splits into fixed-size **chunks**, each compressed by an
//!   independent engine (fresh dictionary — chunk boundaries lose a little
//!   ratio, quantified in tests);
//! * every chunk becomes a run of non-final Deflate blocks; concatenated
//!   they form **one standard zlib stream** (matches never cross chunk
//!   boundaries, so block concatenation is sound), with a single Adler-32
//!   over the whole input;
//! * the output is **bit-identical for any worker count and any engine
//!   kind** — parallelism is an implementation detail, never a format
//!   change.
//!
//! Host-side parallelism uses `std::thread::scope` with a shared atomic
//! work queue (no work stealing needed — chunks are uniform). The stitcher
//! runs on the calling thread and consumes chunk results *in order as they
//! land*, so the Deflate bit-packing of chunk `i` overlaps the matching of
//! chunks `i+1..` — a two-stage software pipeline mirroring the paper's
//! matcher→Huffman FIFO decoupling.
//!
//! Two front-ends produce the (identical) token streams:
//!
//! * [`EngineKind::Modelled`] — the cycle-accurate hardware model, whose
//!   per-chunk cycle counts feed the multi-engine *makespan* model
//!   (chunks round-robin onto `instances` engines), reproducing the
//!   near-linear scaling a multi-engine design gets until DMA saturates;
//! * [`EngineKind::Turbo`] — the word-at-a-time software fast path
//!   ([`lzfpga_lzss::turbo`]); each worker keeps one reusable
//!   [`TurboEngine`] and recycles token buffers through a freelist, so the
//!   steady state allocates nothing per chunk.
//!
//! **Observability.** With [`ParallelConfig::telemetry`] set, the run
//! additionally reports a [`PipelineTelemetry`]: per-worker busy/idle time
//! and freelist traffic, stitcher stall vs encode time, how long finished
//! chunks waited in the reorder queue, the aggregated turbo-engine match
//! counters, and a chrome://tracing span stream (one timeline row per
//! worker plus the stitcher). Telemetry never changes the output bytes —
//! it only watches the clock around the existing stages.
//!
//! **Fault tolerance.** Every per-chunk compression attempt runs under
//! [`std::panic::catch_unwind`], so a crashing engine (or an injected
//! failpoint panic) never takes the job down. A failed chunk climbs a
//! degradation ladder: retry once on the same engine, then fall back to
//! the single-threaded reference compressor — which is token-identical to
//! both front-ends, so the output bytes stay bit-exact even for degraded
//! chunks. Only a chunk that fails all three attempts fails the job, with
//! a typed [`ParallelError::ChunkFailed`]. Every recovery action lands in
//! the job's [`FailureReport`] (`ParallelReport::failures`). Failpoints
//! ([`compress_parallel_with`]) use the same zero-cost-generic pattern as
//! the telemetry probes: production callers pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use lzfpga_container::{
    check_structure, decode_frame, encode_data_header, encode_index_section, encode_trailer,
    finish_stream_checks, payload_from_tokens, plan_range, ContainerError, FrameConfig, IndexEntry,
    HEADER_LEN,
};
use lzfpga_core::config::CLOCK_HZ;
use lzfpga_core::{HwCompressor, HwConfig};
use lzfpga_deflate::adler32::adler32;
use lzfpga_deflate::crc32::Crc32;
use lzfpga_deflate::encoder::{BlockKind, DeflateEncoder};
use lzfpga_deflate::token::Token;
use lzfpga_deflate::zlib::{zlib_compress_tokens, zlib_header};
use lzfpga_faults::{Failpoints, FailureReport, InjectedFault, NoFaults};
use lzfpga_lzss::{BatchEngine, TurboEngine};
use lzfpga_telemetry::{
    frame_span, span_args, stage_span, FrameEvent, FrameOutcome, PipelineTelemetry, SpanTimer,
    StitcherStats, TraceEvent, TurboCounters, WorkerStats, ROOT_SPAN,
};

/// Which compressor front-end produces the per-chunk token streams.
///
/// Both kinds emit token-for-token identical streams (enforced by tests);
/// the choice trades metrics for speed: `Modelled` yields per-chunk cycle
/// counts for the FPGA scale-out model, `Turbo` runs as fast as the host
/// allows and reports zero cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Cycle-accurate hardware model (slow, fully instrumented).
    #[default]
    Modelled,
    /// Word-at-a-time software fast path (no cycle model).
    Turbo,
}

/// Parallel compression configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Chunk size in bytes (each chunk gets a fresh dictionary).
    pub chunk_bytes: usize,
    /// Host worker threads (0 = all available cores).
    pub workers: usize,
    /// Modelled hardware engine instances on the FPGA.
    pub instances: usize,
    /// Per-engine configuration.
    pub hw: HwConfig,
    /// Token-stream front-end.
    pub engine: EngineKind,
    /// Collect pipeline telemetry (worker utilization, stitcher stalls,
    /// turbo counters, trace events) into [`ParallelReport::telemetry`].
    /// Never affects the output bytes.
    pub telemetry: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 256 * 1024,
            workers: 0,
            instances: 4,
            hw: HwConfig::paper_fast(),
            engine: EngineKind::Modelled,
            telemetry: false,
        }
    }
}

/// Rejected [`ParallelConfig`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelConfigError {
    /// Chunks below 4 KiB waste all compression ratio on dictionary warm-up.
    ChunkTooSmall {
        /// The offending chunk size.
        chunk_bytes: usize,
    },
    /// At least one modelled engine instance is required.
    NoInstances,
    /// Framed chunks must fit the container's 32-bit frame fields.
    FrameTooLarge {
        /// The offending frame size.
        frame_bytes: usize,
    },
    /// The batched driver needs at least one lane.
    NoLanes,
}

impl std::fmt::Display for ParallelConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ParallelConfigError::ChunkTooSmall { chunk_bytes } => {
                write!(f, "chunks below 4 KiB waste all ratio (got {chunk_bytes} bytes)")
            }
            ParallelConfigError::NoInstances => write!(f, "at least one engine instance"),
            ParallelConfigError::FrameTooLarge { frame_bytes } => {
                write!(f, "frames above MAX_FRAME_BYTES do not fit LZFC headers (got {frame_bytes} bytes)")
            }
            ParallelConfigError::NoLanes => write!(f, "at least one batch lane"),
        }
    }
}

impl std::error::Error for ParallelConfigError {}

/// Why a parallel compression job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelError {
    /// The configuration failed validation (nothing ran).
    Config(ParallelConfigError),
    /// A chunk failed the whole degradation ladder (engine, retry,
    /// reference fallback).
    ChunkFailed {
        /// The chunk that could not be compressed.
        index: usize,
        /// How many attempts it consumed.
        attempts: u64,
    },
}

impl From<ParallelConfigError> for ParallelError {
    fn from(e: ParallelConfigError) -> Self {
        ParallelError::Config(e)
    }
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ParallelError::Config(e) => write!(f, "parallel config: {e}"),
            ParallelError::ChunkFailed { index, attempts } => {
                write!(f, "chunk {index} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ParallelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelError::Config(e) => Some(e),
            ParallelError::ChunkFailed { .. } => None,
        }
    }
}

impl ParallelConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns an error on a sub-4-KiB chunk size or zero instances.
    ///
    /// # Panics
    /// Panics when the embedded [`HwConfig`] is invalid (its own contract).
    pub fn validate(&self) -> Result<(), ParallelConfigError> {
        if self.chunk_bytes < 4_096 {
            return Err(ParallelConfigError::ChunkTooSmall { chunk_bytes: self.chunk_bytes });
        }
        if self.instances < 1 {
            return Err(ParallelConfigError::NoInstances);
        }
        self.hw.validate();
        Ok(())
    }
}

/// Per-chunk outcome.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Chunk index.
    pub index: usize,
    /// Input bytes in this chunk.
    pub input_bytes: u64,
    /// Engine cycles spent (DMA setup included, as in Table I). Zero for
    /// the [`EngineKind::Turbo`] front-end, which has no cycle model.
    pub cycles: u64,
    /// Tokens produced.
    pub tokens: u64,
}

/// Result of a parallel compression run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// The single zlib stream covering the whole input.
    pub compressed: Vec<u8>,
    /// Per-chunk engine metrics, in chunk order.
    pub chunks: Vec<ChunkReport>,
    /// Makespan in cycles when the chunks run on `instances` engines
    /// (greedy round-robin assignment in chunk order).
    pub makespan_cycles: u64,
    /// Total engine cycles across all chunks (the 1-instance makespan).
    pub total_cycles: u64,
    /// Input size.
    pub input_bytes: u64,
    /// Pipeline telemetry, present when [`ParallelConfig::telemetry`] was
    /// set.
    pub telemetry: Option<PipelineTelemetry>,
    /// Fault-tolerance ledger for this job: attempts, retries, degraded
    /// chunks, caught panics, fired failpoints. `is_clean()` on healthy
    /// runs.
    pub failures: FailureReport,
}

impl ParallelReport {
    /// Compression ratio (input / output).
    pub fn ratio(&self) -> f64 {
        if self.compressed.is_empty() {
            0.0
        } else {
            self.input_bytes as f64 / self.compressed.len() as f64
        }
    }

    /// Modelled aggregate throughput of the multi-engine design, MB/s.
    pub fn mb_per_s(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.input_bytes as f64 / 1e6 * CLOCK_HZ / self.makespan_cycles as f64
        }
    }

    /// Modelled speedup over a single engine.
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.total_cycles as f64 / self.makespan_cycles as f64
        }
    }
}

/// One finished chunk waiting for the stitcher.
struct ChunkDone {
    tokens: Vec<Token>,
    cycles: u64,
    /// Completion time in µs since the run epoch (0 when telemetry is off);
    /// lets the stitcher measure how long the chunk sat in the queue.
    done_us: f64,
}

/// What a worker files into a chunk's slot.
enum SlotState {
    /// The chunk compressed (possibly after retries/degradation).
    Done(ChunkDone),
    /// All three ladder attempts failed.
    Failed {
        /// Attempts consumed on this chunk.
        attempts: u64,
    },
}

type Slot = Option<SlotState>;

/// What one worker hands back for the telemetry report.
type WorkerYield = (WorkerStats, TurboCounters, Vec<TraceEvent>);

/// Run one chunk through the panic/degradation ladder the parallel
/// drivers use, standalone: attempt 0 on the turbo engine, attempt 1
/// retries it, attempt 2 falls back to the single-threaded reference
/// compressor. Every attempt runs under [`catch_unwind`]; the two engine
/// attempts check the failpoint `site` first, so injected errors and
/// panics are absorbed exactly like `compress_parallel`'s workers absorb
/// them — and the ledger in `report` records each recovery the same way
/// (`attempts`, `retries`, `degraded_chunks`, `worker_restarts`,
/// `injected_errors`). The reference rung is deliberately not injectable
/// (like the salvage rung of the range reader's ladder): it is the
/// last-resort path whose failure would fail the whole request, so drills
/// can storm the engine sites as hard as they like and still assert
/// byte-exact output.
///
/// The token stream is identical across all three rungs, so callers
/// (notably `lzfpga-server`'s per-request jobs) get byte-stable output no
/// matter how hostile the run was. `index` is the caller's chunk/frame
/// number, used only for the ledger's chunk lists.
///
/// # Errors
/// The attempts consumed, when even the reference fallback failed.
pub fn compress_chunk_ladder<F: Failpoints>(
    turbo: &mut TurboEngine,
    chunk: &[u8],
    params: &lzfpga_lzss::LzssParams,
    site: &str,
    faults: &F,
    report: &mut FailureReport,
    index: usize,
) -> Result<Vec<Token>, u64> {
    let mut buf: Vec<Token> = Vec::new();
    let mut attempts = 0u64;
    for attempt in 0..3u32 {
        attempts += 1;
        report.attempts += 1;
        match attempt {
            1 => report.retries += 1,
            2 => {
                report.degraded_chunks.push(index);
                report.degraded_chunks.sort_unstable();
            }
            _ => {}
        }
        // Same unwind-isolation soundness argument as the pipeline
        // workers: buf is cleared on entry and the turbo engine re-zeroes
        // its arenas per call, so a mid-compress panic poisons nothing.
        let result = catch_unwind(AssertUnwindSafe(|| -> Result<(), InjectedFault> {
            buf.clear();
            if attempt == 2 {
                buf = lzfpga_lzss::compress(chunk, params);
                return Ok(());
            }
            if faults.check(site) {
                return Err(InjectedFault { site: "ladder" });
            }
            turbo.compress_into_faulty(chunk, params, &mut buf, faults)?;
            Ok(())
        }));
        match result {
            Ok(Ok(())) => return Ok(buf),
            Ok(Err(_injected)) => report.injected_errors += 1,
            Err(_panic) => report.worker_restarts += 1,
        }
    }
    report.failed_chunks.push(index);
    report.failed_chunks.sort_unstable();
    Err(attempts)
}

/// Compress `data` chunk-parallel into one standard zlib stream.
///
/// The output bytes depend only on `cfg.chunk_bytes` and `cfg.hw` — never
/// on `cfg.workers`, `cfg.instances`, or `cfg.engine`.
///
/// # Errors
/// Returns [`ParallelError::Config`] when `cfg` fails validation, and
/// [`ParallelError::ChunkFailed`] when a chunk exhausts the degradation
/// ladder (engine → retry → reference fallback).
pub fn compress_parallel(
    data: &[u8],
    cfg: &ParallelConfig,
) -> Result<ParallelReport, ParallelError> {
    compress_parallel_with(data, cfg, &NoFaults)
}

/// [`compress_parallel`] with failpoints active.
///
/// Sites: `parallel.worker.chunk` fires once per per-chunk attempt (so hit
/// counts walk the ladder: retry, then reference fallback); the turbo
/// front-end additionally routes through `turbo.compress.enter` /
/// `turbo.compress.exit` (except when telemetry is on, where the probed
/// compress path is used instead). Injected panics are caught by the
/// worker's unwind isolation and count as `worker_restarts`; injected
/// errors count as `injected_errors`. All fired faults are drained into
/// [`ParallelReport::failures`].
pub fn compress_parallel_with<F: Failpoints>(
    data: &[u8],
    cfg: &ParallelConfig,
    faults: &F,
) -> Result<ParallelReport, ParallelError> {
    cfg.validate()?;
    let chunks: Vec<&[u8]> =
        if data.is_empty() { vec![&[]] } else { data.chunks(cfg.chunk_bytes).collect() };
    let n_chunks = chunks.len();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        cfg.workers
    }
    .clamp(1, n_chunks);

    // Workers pull chunk indices from a shared atomic counter and file the
    // token stream into its index's slot; the stitcher (this thread) waits
    // on the condvar for the next in-order slot and encodes it while later
    // chunks are still being matched. Turbo workers recycle token buffers
    // through the freelist, so steady-state chunks allocate nothing.
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Slot>> = Mutex::new((0..n_chunks).map(|_| None).collect());
    let ready = Condvar::new();
    let freelist: Mutex<Vec<Vec<Token>>> = Mutex::new(Vec::new());
    let params = cfg.hw.as_lzss_params();
    let epoch = Instant::now();
    let worker_yields: Mutex<Vec<WorkerYield>> = Mutex::new(Vec::new());
    let failure_acc: Mutex<FailureReport> = Mutex::new(FailureReport::default());

    let mut enc = DeflateEncoder::new();
    let mut reports = Vec::with_capacity(n_chunks);
    let mut stitch_timer = cfg.telemetry.then(|| SpanTimer::new(epoch, 0));
    let mut stitcher = StitcherStats::default();
    let mut stitch_error: Option<ParallelError> = None;
    std::thread::scope(|s| {
        for w in 0..workers {
            let (next, slots, ready, freelist, params, chunks, worker_yields, failure_acc) =
                (&next, &slots, &ready, &freelist, &params, &chunks, &worker_yields, &failure_acc);
            s.spawn(move || {
                let mut turbo = TurboEngine::new();
                let mut counters = TurboCounters::default();
                let mut stats = WorkerStats { worker: w, ..WorkerStats::default() };
                let mut timer = cfg.telemetry.then(|| SpanTimer::new(epoch, w as u32 + 1));
                let spawned_us = timer.as_ref().map_or(0.0, SpanTimer::now_us);
                let mut local = FailureReport::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    let start_us = timer.as_ref().map_or(0.0, SpanTimer::now_us);
                    let popped = if cfg.engine == EngineKind::Turbo {
                        let popped = freelist.lock().expect("freelist lock").pop();
                        if popped.is_some() {
                            stats.freelist_hits += 1;
                        } else {
                            stats.freelist_misses += 1;
                        }
                        popped
                    } else {
                        None
                    };
                    let mut buf = popped.unwrap_or_default();

                    // Degradation ladder: attempt 0 on the configured
                    // engine, attempt 1 retries it, attempt 2 falls back
                    // to the reference compressor (token-identical, so
                    // the output bytes do not change; cycle counts for a
                    // degraded Modelled chunk read 0).
                    let mut outcome: Option<u64> = None;
                    let mut chunk_attempts = 0u64;
                    for attempt in 0..3u32 {
                        chunk_attempts += 1;
                        local.attempts += 1;
                        match attempt {
                            1 => local.retries += 1,
                            2 => local.degraded_chunks.push(i),
                            _ => {}
                        }
                        // The buffer and engine cross the unwind boundary,
                        // which is sound here: `buf` is cleared on entry and
                        // the turbo engine re-zeroes its arenas per call, so
                        // a mid-compress panic leaves no poisoned state.
                        let result =
                            catch_unwind(AssertUnwindSafe(|| -> Result<u64, InjectedFault> {
                                if faults.check("parallel.worker.chunk") {
                                    return Err(InjectedFault { site: "parallel.worker.chunk" });
                                }
                                buf.clear();
                                if attempt == 2 {
                                    buf = lzfpga_lzss::compress(chunks[i], params);
                                    return Ok(0);
                                }
                                match cfg.engine {
                                    EngineKind::Modelled => {
                                        let rep = HwCompressor::new(cfg.hw).compress(chunks[i]);
                                        buf = rep.tokens;
                                        Ok(rep.cycles)
                                    }
                                    EngineKind::Turbo => {
                                        if cfg.telemetry {
                                            turbo.compress_into_probed(
                                                chunks[i],
                                                params,
                                                &mut buf,
                                                &mut counters,
                                            );
                                        } else {
                                            turbo.compress_into_faulty(
                                                chunks[i], params, &mut buf, faults,
                                            )?;
                                        }
                                        Ok(0)
                                    }
                                }
                            }));
                        match result {
                            Ok(Ok(cycles)) => {
                                outcome = Some(cycles);
                                break;
                            }
                            Ok(Err(_injected)) => local.injected_errors += 1,
                            Err(_panic) => local.worker_restarts += 1,
                        }
                    }

                    let Some(cycles) = outcome else {
                        local.failed_chunks.push(i);
                        slots.lock().expect("slot lock")[i] =
                            Some(SlotState::Failed { attempts: chunk_attempts });
                        ready.notify_all();
                        continue;
                    };
                    let tokens = buf;
                    let done_us = if let Some(t) = timer.as_mut() {
                        let mut args = span_args(frame_span(i as u64), ROOT_SPAN);
                        args.push(("bytes", chunks[i].len().into()));
                        args.push(("tokens", tokens.len().into()));
                        stats.busy_s +=
                            t.complete(format!("compress chunk {i}"), "compress", start_us, args);
                        stats.chunks += 1;
                        stats.input_bytes += chunks[i].len() as u64;
                        t.now_us()
                    } else {
                        0.0
                    };
                    slots.lock().expect("slot lock")[i] =
                        Some(SlotState::Done(ChunkDone { tokens, cycles, done_us }));
                    ready.notify_all();
                }
                failure_acc.lock().expect("failure lock").merge(&local);
                if let Some(mut t) = timer {
                    let lifetime_s = (t.now_us() - spawned_us) / 1e6;
                    stats.idle_s = (lifetime_s - stats.busy_s).max(0.0);
                    worker_yields.lock().expect("telemetry lock").push((
                        stats,
                        counters,
                        t.drain(),
                    ));
                }
            });
        }

        // Stitch: per-chunk block runs, in order, overlapping the workers.
        for (i, chunk) in chunks.iter().enumerate() {
            let wait_start_us = stitch_timer.as_ref().map_or(0.0, SpanTimer::now_us);
            let state = {
                let mut guard = slots.lock().expect("slot lock");
                loop {
                    if let Some(state) = guard[i].take() {
                        break state;
                    }
                    guard = ready.wait(guard).expect("slot lock");
                }
            };
            let done = match state {
                SlotState::Done(done) => done,
                SlotState::Failed { attempts } => {
                    // Workers keep draining the remaining chunk indices so
                    // the scope joins promptly; the job reports the first
                    // failed chunk.
                    stitch_error = Some(ParallelError::ChunkFailed { index: i, attempts });
                    break;
                }
            };
            if let Some(t) = stitch_timer.as_mut() {
                let frame_id = frame_span(i as u64);
                stitcher.stall_s += t.complete(
                    format!("wait chunk {i}"),
                    "stall",
                    wait_start_us,
                    span_args(stage_span(frame_id, 1), frame_id),
                );
                stitcher.queue_wait_s += ((t.now_us() - done.done_us) / 1e6).max(0.0);
                let enc_start_us = t.now_us();
                enc.write_block(&done.tokens, BlockKind::FixedHuffman, i + 1 == n_chunks);
                stitcher.encode_s += t.complete(
                    format!("encode chunk {i}"),
                    "encode",
                    enc_start_us,
                    span_args(stage_span(frame_id, 0), frame_id),
                );
            } else {
                enc.write_block(&done.tokens, BlockKind::FixedHuffman, i + 1 == n_chunks);
            }
            reports.push(ChunkReport {
                index: i,
                input_bytes: chunk.len() as u64,
                cycles: done.cycles,
                tokens: done.tokens.len() as u64,
            });
            if cfg.engine == EngineKind::Turbo {
                let mut buf = done.tokens;
                buf.clear();
                let mut list = freelist.lock().expect("freelist lock");
                list.push(buf);
                stitcher.freelist_peak = stitcher.freelist_peak.max(list.len() as u64);
            }
        }
    });

    let mut failures = failure_acc.into_inner().expect("failure lock");
    failures.injected = faults.drain_events();
    if let Some(err) = stitch_error {
        return Err(err);
    }

    let telemetry = stitch_timer.map(|mut t| {
        let mut yields = worker_yields.into_inner().expect("telemetry lock");
        yields.sort_by_key(|(stats, _, _)| stats.worker);
        let mut turbo = TurboCounters::default();
        let mut trace_events = t.drain();
        let mut worker_stats = Vec::with_capacity(yields.len());
        for (stats, counters, events) in yields {
            turbo.merge(&counters);
            trace_events.extend(events);
            worker_stats.push(stats);
        }
        let wall_s = epoch.elapsed().as_secs_f64();
        // Root file span: every chunk span parents here, so the whole job
        // renders as one causal tree in chrome://tracing.
        let mut root_args = span_args(ROOT_SPAN, 0);
        root_args.push(("bytes", (data.len() as u64).into()));
        root_args.push(("chunks", (n_chunks as u64).into()));
        trace_events.insert(
            0,
            TraceEvent {
                name: "parallel compress".to_string(),
                cat: "file",
                tid: 0,
                ts_us: 0.0,
                dur_us: wall_s * 1e6,
                args: root_args,
            },
        );
        PipelineTelemetry { wall_s, workers: worker_stats, stitcher, turbo, trace_events }
    });

    // zlib framing: header, the stitched blocks, single Adler trailer.
    let mut compressed = zlib_header(cfg.hw.window_size.max(256), 1).to_vec();
    compressed.extend_from_slice(&enc.finish());
    compressed.extend_from_slice(&adler32(data).to_be_bytes());

    // Makespan on `instances` engines, chunks assigned round-robin.
    let mut engine_load = vec![0u64; cfg.instances];
    for r in &reports {
        engine_load[r.index % cfg.instances] += r.cycles;
    }
    let makespan = engine_load.into_iter().max().unwrap_or(0);
    let total: u64 = reports.iter().map(|r| r.cycles).sum();

    Ok(ParallelReport {
        compressed,
        chunks: reports,
        makespan_cycles: makespan,
        total_cycles: total,
        input_bytes: data.len() as u64,
        telemetry,
        failures,
    })
}

/// One finished LZFC frame waiting for the framed stitcher.
struct FrameDone {
    /// Complete frame bytes: header + stored payload.
    frame: Vec<u8>,
    codec: &'static str,
    cycles: u64,
    tokens: u64,
    encode_us: f64,
    /// Worker pickup time in µs since the run epoch ([`FrameEvent::start_us`]).
    start_us: f64,
}

/// Result of a chunk-parallel framed (LZFC) compression run.
#[derive(Debug, Clone)]
pub struct FramedParallelReport {
    /// The complete LZFC stream (frames + trailer), byte-identical to what
    /// a single-threaded [`lzfpga_container::FrameWriter`] produces with
    /// the same frame size and engine parameters.
    pub framed: Vec<u8>,
    /// Data frames in the stream.
    pub frames: u32,
    /// Input size.
    pub input_bytes: u64,
    /// Per-chunk engine metrics, in frame order.
    pub chunks: Vec<ChunkReport>,
    /// Fault-tolerance ledger (same ladder as [`compress_parallel`]).
    pub failures: FailureReport,
    /// Per-frame telemetry, when [`FrameConfig::collect_events`] was set.
    pub events: Vec<FrameEvent>,
    /// Aggregated turbo-engine match counters (kernel dispatch, lane
    /// occupancy, match-loop counts). Present when the run compressed with
    /// instrumentation — the batched driver or [`compress_frames_parallel`]
    /// with [`ParallelConfig::telemetry`] set.
    pub counters: Option<TurboCounters>,
    /// Causal chrome://tracing spans (one root file span, one span per
    /// frame, stage children), when [`ParallelConfig::telemetry`] was set
    /// on the per-frame driver. Empty on the batched driver and on plain
    /// runs.
    pub trace_events: Vec<TraceEvent>,
}

/// Compress `data` chunk-parallel into one LZFC framed stream: every
/// chunk becomes exactly one independently decodable frame.
///
/// Chunk boundaries *are* frame boundaries — `cfg.chunk_bytes` is ignored
/// in favor of `frame_cfg.frame_bytes`. The output depends only on the
/// frame size and engine parameters, never on worker count or engine kind.
///
/// # Errors
/// [`ParallelError::Config`] for a rejected configuration (frames below
/// 4 KiB or above the container's header range), [`ParallelError::ChunkFailed`]
/// when a frame exhausts the degradation ladder.
pub fn compress_frames_parallel(
    data: &[u8],
    cfg: &ParallelConfig,
    frame_cfg: &FrameConfig,
) -> Result<FramedParallelReport, ParallelError> {
    compress_frames_parallel_with(data, cfg, frame_cfg, &NoFaults)
}

/// [`compress_frames_parallel`] with failpoints active.
///
/// Site `parallel.frame.chunk` fires once per per-frame attempt, walking
/// the same ladder as `parallel.worker.chunk`: retry on the configured
/// engine, then the reference compressor (token-identical, so degraded
/// frames keep the output bytes exact).
pub fn compress_frames_parallel_with<F: Failpoints>(
    data: &[u8],
    cfg: &ParallelConfig,
    frame_cfg: &FrameConfig,
    faults: &F,
) -> Result<FramedParallelReport, ParallelError> {
    if frame_cfg.frame_bytes > lzfpga_container::MAX_FRAME_BYTES {
        return Err(
            ParallelConfigError::FrameTooLarge { frame_bytes: frame_cfg.frame_bytes }.into()
        );
    }
    let eff = ParallelConfig { chunk_bytes: frame_cfg.frame_bytes, ..*cfg };
    eff.validate()?;
    // Unlike the zlib path, an empty input has zero frames (the stream is
    // a bare trailer), matching FrameWriter exactly.
    let chunks: Vec<&[u8]> = data.chunks(eff.chunk_bytes).collect();
    let n_chunks = chunks.len();
    let workers = if eff.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        eff.workers
    }
    .clamp(1, n_chunks.max(1));

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<FrameDone, u64>>>> =
        Mutex::new((0..n_chunks).map(|_| None).collect());
    let ready = Condvar::new();
    let params = eff.hw.as_lzss_params();
    let epoch = Instant::now();
    let failure_acc: Mutex<FailureReport> = Mutex::new(FailureReport::default());
    let counter_acc: Mutex<TurboCounters> = Mutex::new(TurboCounters::default());
    let trace_acc: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

    let mut framed = Vec::new();
    let mut entries: Vec<IndexEntry> = Vec::with_capacity(n_chunks);
    let mut ustart = 0u64;
    let mut reports = Vec::with_capacity(n_chunks);
    let mut events = Vec::new();
    let mut stitch_error: Option<ParallelError> = None;
    let mut stitch_timer = eff.telemetry.then(|| SpanTimer::new(epoch, 0));
    std::thread::scope(|s| {
        for w in 0..workers.min(n_chunks) {
            let (next, slots, ready, params, chunks, failure_acc, counter_acc, trace_acc) =
                (&next, &slots, &ready, &params, &chunks, &failure_acc, &counter_acc, &trace_acc);
            s.spawn(move || {
                let mut turbo = TurboEngine::new();
                let mut counters = eff.telemetry.then(TurboCounters::default);
                let mut timer = eff.telemetry.then(|| SpanTimer::new(epoch, w as u32 + 1));
                let mut local = FailureReport::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    let t0 = Instant::now();
                    let start_us = epoch.elapsed().as_secs_f64() * 1e6;
                    let frame_id = frame_span(i as u64);
                    let mut buf: Vec<Token> = Vec::new();
                    let mut outcome: Option<u64> = None;
                    let mut chunk_attempts = 0u64;
                    for attempt in 0..3u32 {
                        chunk_attempts += 1;
                        local.attempts += 1;
                        match attempt {
                            1 => local.retries += 1,
                            2 => local.degraded_chunks.push(i),
                            _ => {}
                        }
                        let attempt_start_us = timer.as_ref().map_or(0.0, SpanTimer::now_us);
                        // Same unwind-isolation soundness argument as the
                        // zlib path: buf is cleared on entry and the turbo
                        // engine re-zeroes its arenas per call.
                        let result =
                            catch_unwind(AssertUnwindSafe(|| -> Result<u64, InjectedFault> {
                                if faults.check("parallel.frame.chunk") {
                                    return Err(InjectedFault { site: "parallel.frame.chunk" });
                                }
                                buf.clear();
                                if attempt == 2 {
                                    buf = lzfpga_lzss::compress(chunks[i], params);
                                    return Ok(0);
                                }
                                match eff.engine {
                                    EngineKind::Modelled => {
                                        let rep = HwCompressor::new(eff.hw).compress(chunks[i]);
                                        buf = rep.tokens;
                                        Ok(rep.cycles)
                                    }
                                    EngineKind::Turbo => {
                                        if let Some(c) = counters.as_mut() {
                                            turbo.compress_into_probed(
                                                chunks[i], params, &mut buf, c,
                                            );
                                        } else {
                                            turbo.compress_into_faulty(
                                                chunks[i], params, &mut buf, faults,
                                            )?;
                                        }
                                        Ok(0)
                                    }
                                }
                            }));
                        match result {
                            Ok(Ok(cycles)) => {
                                outcome = Some(cycles);
                                break;
                            }
                            Ok(Err(_injected)) => {
                                local.injected_errors += 1;
                                if let Some(t) = timer.as_mut() {
                                    // Failed attempts stay on the frame's
                                    // branch of the span tree, so injected
                                    // faults are visible in the causal view.
                                    t.complete(
                                        format!("fault frame {i} attempt {attempt}"),
                                        "fault",
                                        attempt_start_us,
                                        span_args(stage_span(frame_id, 8 + attempt), frame_id),
                                    );
                                }
                            }
                            Err(_panic) => {
                                local.worker_restarts += 1;
                                if let Some(t) = timer.as_mut() {
                                    t.complete(
                                        format!("panic frame {i} attempt {attempt}"),
                                        "fault",
                                        attempt_start_us,
                                        span_args(stage_span(frame_id, 8 + attempt), frame_id),
                                    );
                                }
                            }
                        }
                    }
                    let state = match outcome {
                        Some(cycles) => {
                            if let Some(t) = timer.as_mut() {
                                t.complete(
                                    format!("tokens frame {i}"),
                                    "compress",
                                    start_us,
                                    span_args(stage_span(frame_id, 0), frame_id),
                                );
                            }
                            let enc_start_us = timer.as_ref().map_or(0.0, SpanTimer::now_us);
                            let (codec, payload) = payload_from_tokens(&buf, chunks[i], params);
                            let payload_len = payload.len();
                            let ulen = u32::try_from(chunks[i].len())
                                .expect("frame_bytes validated <= MAX_FRAME_BYTES");
                            let seq = u32::try_from(i).expect("frame count exceeds u32");
                            let header = encode_data_header(seq, codec, ulen, &payload);
                            let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
                            frame.extend_from_slice(&header);
                            frame.extend_from_slice(&payload);
                            if let Some(t) = timer.as_mut() {
                                t.complete(
                                    format!("encode frame {i}"),
                                    "encode",
                                    enc_start_us,
                                    span_args(stage_span(frame_id, 1), frame_id),
                                );
                                let mut args = span_args(frame_id, ROOT_SPAN);
                                args.push(("bytes", chunks[i].len().into()));
                                args.push(("payload_bytes", payload_len.into()));
                                t.complete(format!("frame {i}"), "frame", start_us, args);
                            }
                            Ok(FrameDone {
                                frame,
                                codec: codec.as_str(),
                                cycles,
                                tokens: buf.len() as u64,
                                encode_us: t0.elapsed().as_secs_f64() * 1e6,
                                start_us,
                            })
                        }
                        None => {
                            local.failed_chunks.push(i);
                            Err(chunk_attempts)
                        }
                    };
                    slots.lock().expect("slot lock")[i] = Some(state);
                    ready.notify_all();
                }
                failure_acc.lock().expect("failure lock").merge(&local);
                if let Some(c) = counters {
                    counter_acc.lock().expect("counter lock").merge(&c);
                }
                if let Some(mut t) = timer {
                    trace_acc.lock().expect("trace lock").extend(t.drain());
                }
            });
        }

        // Stitch frames in order while later chunks are still compressing.
        for (i, chunk) in chunks.iter().enumerate() {
            let wait_start_us = stitch_timer.as_ref().map_or(0.0, SpanTimer::now_us);
            let state = {
                let mut guard = slots.lock().expect("slot lock");
                loop {
                    if let Some(state) = guard[i].take() {
                        break state;
                    }
                    guard = ready.wait(guard).expect("slot lock");
                }
            };
            let done = match state {
                Ok(done) => done,
                Err(attempts) => {
                    stitch_error = Some(ParallelError::ChunkFailed { index: i, attempts });
                    break;
                }
            };
            if let Some(t) = stitch_timer.as_mut() {
                let frame_id = frame_span(i as u64);
                t.complete(
                    format!("wait frame {i}"),
                    "stall",
                    wait_start_us,
                    span_args(stage_span(frame_id, 4), frame_id),
                );
            }
            entries.push(IndexEntry { header_start: framed.len() as u64, ustart });
            ustart += chunk.len() as u64;
            framed.extend_from_slice(&done.frame);
            if frame_cfg.collect_events {
                events.push(FrameEvent {
                    seq: i as u32,
                    uncompressed_bytes: chunk.len() as u64,
                    payload_bytes: (done.frame.len() - HEADER_LEN) as u64,
                    codec: done.codec,
                    crc_us: 0.0,
                    encode_us: done.encode_us,
                    start_us: done.start_us,
                    outcome: FrameOutcome::Written,
                });
            }
            reports.push(ChunkReport {
                index: i,
                input_bytes: chunk.len() as u64,
                cycles: done.cycles,
                tokens: done.tokens,
            });
        }
    });

    let mut failures = failure_acc.into_inner().expect("failure lock");
    failures.injected = faults.drain_events();
    if let Some(err) = stitch_error {
        return Err(err);
    }

    // Assemble the causal span tree: stitcher spans + worker spans under
    // one root file span that the frame spans parent to.
    let trace_events = match stitch_timer {
        Some(mut t) => {
            let mut list = t.drain();
            list.extend(trace_acc.into_inner().expect("trace lock"));
            let mut root_args = span_args(ROOT_SPAN, 0);
            root_args.push(("bytes", (data.len() as u64).into()));
            root_args.push(("frames", (n_chunks as u64).into()));
            list.insert(
                0,
                TraceEvent {
                    name: "frame compress".to_string(),
                    cat: "file",
                    tid: 0,
                    ts_us: 0.0,
                    dur_us: epoch.elapsed().as_secs_f64() * 1e6,
                    args: root_args,
                },
            );
            list
        }
        None => Vec::new(),
    };

    // Seek index + trailer, byte-identical to FrameWriter's finalize
    // (which accumulates the CRC incrementally).
    if frame_cfg.index && n_chunks > 0 {
        let section = encode_index_section(&entries, data.len() as u64, framed.len() as u64);
        framed.extend_from_slice(&section);
    }
    let mut crc = Crc32::new();
    crc.update(data);
    framed.extend_from_slice(&encode_trailer(n_chunks as u32, data.len() as u64, crc.finish()));

    Ok(FramedParallelReport {
        framed,
        frames: n_chunks as u32,
        input_bytes: data.len() as u64,
        chunks: reports,
        failures,
        events,
        counters: eff
            .telemetry
            .then(|| counter_acc.into_inner().expect("counter lock"))
            .filter(|c| c.kernel_runs > 0 || c.literals > 0 || c.matches > 0),
        trace_events,
    })
}

/// Strictly decode an LZFC stream with frame payloads verified and
/// decompressed in parallel (`workers` = 0 uses all cores).
///
/// The serial structure scan comes first — headers are cheap — then the
/// per-frame CRC + decode work (the expensive part) fans out, and the
/// trailer cross-checks run over the reassembled output. Equivalent to
/// [`lzfpga_container::unframe`] on every input, valid or not.
///
/// # Errors
/// Exactly the [`ContainerError`] the serial decoder would report; when
/// several frames are damaged, the lowest-numbered frame's error wins.
pub fn decompress_frames_parallel(bytes: &[u8], workers: usize) -> Result<Vec<u8>, ContainerError> {
    let structure = check_structure(bytes)?;
    let n = structure.frames.len();
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(4, |w| w.get())
    } else {
        workers
    }
    .clamp(1, n.max(1));

    type DecodeSlot = Option<Result<Vec<u8>, ContainerError>>;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<DecodeSlot>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            let (next, slots, structure) = (&next, &slots, &structure);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let decoded = decode_frame(bytes, &structure.frames[i]);
                slots.lock().expect("slot lock")[i] = Some(decoded);
            });
        }
    });

    let slots = slots.into_inner().expect("slot lock");
    let mut out = Vec::new();
    let mut crc = Crc32::new();
    for slot in slots {
        let data = slot.expect("every frame index was claimed")?;
        crc.update(&data);
        out.extend_from_slice(&data);
    }
    finish_stream_checks(&structure, out.len() as u64, crc.finish())?;
    Ok(out)
}

/// Decode exactly the bytes `range.start..range.end` of the stream's
/// original input, fanning the covering frames out across `workers`
/// threads (`workers` = 0 uses all cores).
///
/// The plan comes from [`lzfpga_container::plan_range`]: the seek index
/// when the stream carries a truthful one, a strict structure scan
/// otherwise — either way only the frames covering the range are read,
/// CRC-checked and inflated, so the work is O(frames-in-range) regardless
/// of stream size. The result is byte-identical to
/// `decompress_frames_parallel(bytes)[start..end]` with range ends clamped
/// to the stream's total.
///
/// # Errors
/// The strict decoder's [`ContainerError`] for damaged streams (the
/// lowest-numbered damaged covering frame wins); for degraded serves over
/// damaged streams use [`lzfpga_container::open_indexed`] instead.
pub fn decode_range_parallel(
    bytes: &[u8],
    range: std::ops::Range<u64>,
    workers: usize,
) -> Result<Vec<u8>, ContainerError> {
    decode_range_parallel_with(bytes, range, workers, &NoFaults, &mut FailureReport::default())
}

/// [`decode_range_parallel`] with failpoints active on the decode side.
///
/// Site `parallel.range.frame` fires once per per-frame decode attempt;
/// each frame gets the same bounded ladder the compress side uses (three
/// attempts under [`catch_unwind`], so injected errors count as
/// `injected_errors` and injected panics as `worker_restarts` in
/// `report`). A frame whose every attempt was injected away is reported
/// as [`ContainerError::RangeUnavailable`] at that frame's first
/// uncompressed offset — the bytes could not be produced, and refusing
/// the range is the only answer that never serves wrong bytes.
///
/// # Errors
/// The strict decoder's typed error for damaged streams, or the
/// `RangeUnavailable` refusal described above.
pub fn decode_range_parallel_with<F: Failpoints>(
    bytes: &[u8],
    range: std::ops::Range<u64>,
    workers: usize,
    faults: &F,
    report: &mut FailureReport,
) -> Result<Vec<u8>, ContainerError> {
    let (plan, clamped) = plan_range(bytes, range)?;
    let n = plan.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(4, |w| w.get())
    } else {
        workers
    }
    .clamp(1, n);

    type DecodeSlot = Option<Result<Vec<u8>, ContainerError>>;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<DecodeSlot>> = Mutex::new((0..n).map(|_| None).collect());
    let failure_acc: Mutex<&mut FailureReport> = Mutex::new(report);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let (next, slots, plan, failure_acc) = (&next, &slots, &plan, &failure_acc);
            s.spawn(move || {
                let mut local = FailureReport::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The decode-side ladder: three attempts, each behind
                    // the failpoint and an unwind boundary. decode_frame
                    // itself is deterministic, so a real stream error is
                    // final on the first non-injected attempt.
                    let mut decoded: DecodeSlot = None;
                    for attempt in 0..3u32 {
                        local.attempts += 1;
                        if attempt == 1 {
                            local.retries += 1;
                        }
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if faults.check("parallel.range.frame") {
                                return Err(());
                            }
                            Ok(decode_frame(bytes, &plan[i].0))
                        }));
                        match result {
                            Ok(Ok(r)) => {
                                decoded = Some(r);
                                break;
                            }
                            Ok(Err(())) => local.injected_errors += 1,
                            Err(_panic) => local.worker_restarts += 1,
                        }
                    }
                    let decoded = decoded.unwrap_or_else(|| {
                        local.failed_chunks.push(i);
                        Err(ContainerError::RangeUnavailable { offset: plan[i].1 })
                    });
                    slots.lock().expect("slot lock")[i] = Some(decoded);
                }
                local.failed_chunks.sort_unstable();
                failure_acc.lock().expect("failure lock").merge(&local);
            });
        }
    });

    let slots = slots.into_inner().expect("slot lock");
    let mut out = Vec::with_capacity((clamped.end - clamped.start) as usize);
    for (slot, &(_, fstart)) in slots.into_iter().zip(&plan) {
        let data = slot.expect("every frame index was claimed")?;
        // decode_frame verified data.len() == the header's ulen, and the
        // planner verified the header against the frame map — the slice
        // arithmetic below cannot go out of bounds.
        let fend = fstart + data.len() as u64;
        let lo = (clamped.start.max(fstart) - fstart) as usize;
        let hi = (clamped.end.min(fend) - fstart) as usize;
        out.extend_from_slice(&data[lo..hi]);
    }
    Ok(out)
}

/// Result of a multi-lane batched compression run over independent inputs.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One standalone zlib stream per input, in input order. `streams[i]`
    /// is byte-identical to single-stream compression of `inputs[i]` with
    /// the same engine parameters.
    pub streams: Vec<Vec<u8>>,
    /// Total input size across all lanes.
    pub input_bytes: u64,
    /// Lane width the driver interleaved (the configured value, not the
    /// tail group's width).
    pub lanes: usize,
    /// Aggregated match-loop counters (kernel dispatch, lane occupancy),
    /// present when [`ParallelConfig::telemetry`] was set.
    pub counters: Option<TurboCounters>,
    /// Fault-tolerance ledger (batch → batch retry → reference fallback).
    pub failures: FailureReport,
}

/// What one worker produced for a group of `lanes` consecutive inputs.
enum GroupState<T> {
    /// Per-lane results, in lane order.
    Done(Vec<T>),
    /// Every ladder rung failed; holds the attempts consumed.
    Failed(u64),
}

/// Run the ladder for one group: batch engine, batch retry, then the
/// reference compressor lane by lane (token-identical, so the fallback
/// never changes output bytes). Returns the per-lane token streams.
fn batch_group_tokens(
    engine: &mut BatchEngine,
    group: &[&[u8]],
    params: &lzfpga_lzss::LzssParams,
    counters: Option<&mut TurboCounters>,
    local: &mut FailureReport,
    frame_base: usize,
) -> GroupState<Vec<Token>> {
    let mut counters = counters;
    let mut attempts = 0u64;
    for attempt in 0..3u32 {
        attempts += 1;
        local.attempts += 1;
        match attempt {
            1 => local.retries += 1,
            2 => local.degraded_chunks.extend(frame_base..frame_base + group.len()),
            _ => {}
        }
        // Same unwind-isolation argument as the chunk workers: the batch
        // engine re-zeroes its lane arenas per call, so a mid-batch panic
        // leaves no poisoned state behind.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if attempt == 2 {
                group.iter().map(|lane| lzfpga_lzss::compress(lane, params)).collect()
            } else if let Some(c) = counters.as_deref_mut() {
                engine.compress_batch_probed(group, params, c)
            } else {
                engine.compress_batch(group, params)
            }
        }));
        match result {
            Ok(tokens) => return GroupState::Done(tokens),
            Err(_panic) => local.worker_restarts += 1,
        }
    }
    local.failed_chunks.extend(frame_base..frame_base + group.len());
    GroupState::Failed(attempts)
}

/// Compress independent inputs through the multi-lane batched driver: each
/// group of `lanes` consecutive inputs interleaves through one kernel
/// invocation loop ([`lzfpga_lzss::BatchEngine`]), groups fan out across
/// worker threads, and every input becomes its own standalone zlib stream.
///
/// `streams[i]` is byte-identical to single-stream turbo compression of
/// `inputs[i]` — lane width, group shape, and worker count are pure
/// performance knobs. `cfg.chunk_bytes` is ignored: lanes are whole inputs.
///
/// # Errors
/// [`ParallelError::Config`] when `cfg` fails validation or `lanes` is
/// zero; [`ParallelError::ChunkFailed`] (index = input index) when a group
/// exhausts the ladder (batch, batch retry, reference fallback).
pub fn compress_batch(
    inputs: &[&[u8]],
    cfg: &ParallelConfig,
    lanes: usize,
) -> Result<BatchReport, ParallelError> {
    cfg.validate()?;
    if lanes == 0 {
        return Err(ParallelConfigError::NoLanes.into());
    }
    let params = cfg.hw.as_lzss_params();
    let window = cfg.hw.window_size.max(256);
    let groups: Vec<&[&[u8]]> = inputs.chunks(lanes).collect();
    let n_groups = groups.len();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        cfg.workers
    }
    .clamp(1, n_groups.max(1));

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<GroupState<Vec<u8>>>>> =
        Mutex::new((0..n_groups).map(|_| None).collect());
    let counter_acc: Mutex<TurboCounters> = Mutex::new(TurboCounters::default());
    let failure_acc: Mutex<FailureReport> = Mutex::new(FailureReport::default());

    std::thread::scope(|s| {
        for _ in 0..workers.min(n_groups) {
            let (next, slots, groups, params, counter_acc, failure_acc) =
                (&next, &slots, &groups, &params, &counter_acc, &failure_acc);
            s.spawn(move || {
                let mut engine = BatchEngine::new();
                let mut counters = cfg.telemetry.then(TurboCounters::default);
                let mut local = FailureReport::default();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= n_groups {
                        break;
                    }
                    let state = match batch_group_tokens(
                        &mut engine,
                        groups[g],
                        params,
                        counters.as_mut(),
                        &mut local,
                        g * lanes,
                    ) {
                        GroupState::Done(tokens) => GroupState::Done(
                            tokens
                                .iter()
                                .zip(groups[g])
                                .map(|(t, lane)| {
                                    zlib_compress_tokens(t, lane, BlockKind::FixedHuffman, window)
                                })
                                .collect(),
                        ),
                        GroupState::Failed(attempts) => GroupState::Failed(attempts),
                    };
                    slots.lock().expect("slot lock")[g] = Some(state);
                }
                failure_acc.lock().expect("failure lock").merge(&local);
                if let Some(c) = counters {
                    counter_acc.lock().expect("counter lock").merge(&c);
                }
            });
        }
    });

    let failures = failure_acc.into_inner().expect("failure lock");
    let mut streams = Vec::with_capacity(inputs.len());
    for (g, slot) in slots.into_inner().expect("slot lock").into_iter().enumerate() {
        match slot.expect("every group index was claimed") {
            GroupState::Done(group_streams) => streams.extend(group_streams),
            GroupState::Failed(attempts) => {
                return Err(ParallelError::ChunkFailed { index: g * lanes, attempts });
            }
        }
    }

    Ok(BatchReport {
        streams,
        input_bytes: inputs.iter().map(|d| d.len() as u64).sum(),
        lanes,
        counters: cfg.telemetry.then(|| counter_acc.into_inner().expect("counter lock")),
        failures,
    })
}

/// Compress `data` into one LZFC framed stream through the multi-lane
/// batched driver: frames are cut exactly as [`compress_frames_parallel`]
/// cuts them, but each group of `lanes` consecutive frames interleaves
/// through one [`lzfpga_lzss::BatchEngine`] invocation loop instead of
/// compressing one frame at a time.
///
/// The output is byte-identical to the single-threaded
/// [`lzfpga_container::FrameWriter`] (and therefore to
/// [`compress_frames_parallel`]) for every lane width and worker count.
///
/// # Errors
/// [`ParallelError::Config`] for rejected configurations or `lanes` = 0;
/// [`ParallelError::ChunkFailed`] when a lane group exhausts the ladder.
pub fn compress_frames_batched(
    data: &[u8],
    cfg: &ParallelConfig,
    frame_cfg: &FrameConfig,
    lanes: usize,
) -> Result<FramedParallelReport, ParallelError> {
    if frame_cfg.frame_bytes > lzfpga_container::MAX_FRAME_BYTES {
        return Err(
            ParallelConfigError::FrameTooLarge { frame_bytes: frame_cfg.frame_bytes }.into()
        );
    }
    let eff = ParallelConfig { chunk_bytes: frame_cfg.frame_bytes, ..*cfg };
    eff.validate()?;
    if lanes == 0 {
        return Err(ParallelConfigError::NoLanes.into());
    }
    let params = eff.hw.as_lzss_params();
    let chunks: Vec<&[u8]> = data.chunks(eff.chunk_bytes).collect();
    let n_chunks = chunks.len();
    let groups: Vec<&[&[u8]]> = chunks.chunks(lanes).collect();
    let n_groups = groups.len();
    let workers = if eff.workers == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        eff.workers
    }
    .clamp(1, n_groups.max(1));

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<GroupState<FrameDone>>>> =
        Mutex::new((0..n_groups).map(|_| None).collect());
    let counter_acc: Mutex<TurboCounters> = Mutex::new(TurboCounters::default());
    let failure_acc: Mutex<FailureReport> = Mutex::new(FailureReport::default());
    let epoch = Instant::now();

    std::thread::scope(|s| {
        for _ in 0..workers.min(n_groups) {
            let (next, slots, groups, params, counter_acc, failure_acc) =
                (&next, &slots, &groups, &params, &counter_acc, &failure_acc);
            s.spawn(move || {
                let mut engine = BatchEngine::new();
                let mut counters = eff.telemetry.then(TurboCounters::default);
                let mut local = FailureReport::default();
                loop {
                    let g = next.fetch_add(1, Ordering::Relaxed);
                    if g >= n_groups {
                        break;
                    }
                    let t0 = Instant::now();
                    let start_us = epoch.elapsed().as_secs_f64() * 1e6;
                    let frame_base = g * lanes;
                    let state = match batch_group_tokens(
                        &mut engine,
                        groups[g],
                        params,
                        counters.as_mut(),
                        &mut local,
                        frame_base,
                    ) {
                        GroupState::Done(tokens) => GroupState::Done(
                            tokens
                                .iter()
                                .zip(groups[g])
                                .enumerate()
                                .map(|(j, (buf, lane))| {
                                    let (codec, payload) = payload_from_tokens(buf, lane, params);
                                    let ulen = u32::try_from(lane.len())
                                        .expect("frame_bytes validated <= MAX_FRAME_BYTES");
                                    let seq = u32::try_from(frame_base + j)
                                        .expect("frame count exceeds u32");
                                    let header = encode_data_header(seq, codec, ulen, &payload);
                                    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
                                    frame.extend_from_slice(&header);
                                    frame.extend_from_slice(&payload);
                                    FrameDone {
                                        frame,
                                        codec: codec.as_str(),
                                        cycles: 0,
                                        tokens: buf.len() as u64,
                                        encode_us: t0.elapsed().as_secs_f64() * 1e6,
                                        start_us,
                                    }
                                })
                                .collect(),
                        ),
                        GroupState::Failed(attempts) => GroupState::Failed(attempts),
                    };
                    slots.lock().expect("slot lock")[g] = Some(state);
                }
                failure_acc.lock().expect("failure lock").merge(&local);
                if let Some(c) = counters {
                    counter_acc.lock().expect("counter lock").merge(&c);
                }
            });
        }
    });

    let failures = failure_acc.into_inner().expect("failure lock");
    let mut framed = Vec::new();
    let mut entries: Vec<IndexEntry> = Vec::with_capacity(n_chunks);
    let mut ustart = 0u64;
    let mut reports = Vec::with_capacity(n_chunks);
    let mut events = Vec::new();
    for (g, slot) in slots.into_inner().expect("slot lock").into_iter().enumerate() {
        let dones = match slot.expect("every group index was claimed") {
            GroupState::Done(dones) => dones,
            GroupState::Failed(attempts) => {
                return Err(ParallelError::ChunkFailed { index: g * lanes, attempts });
            }
        };
        for (j, done) in dones.into_iter().enumerate() {
            let i = g * lanes + j;
            entries.push(IndexEntry { header_start: framed.len() as u64, ustart });
            ustart += chunks[i].len() as u64;
            framed.extend_from_slice(&done.frame);
            if frame_cfg.collect_events {
                events.push(FrameEvent {
                    seq: i as u32,
                    uncompressed_bytes: chunks[i].len() as u64,
                    payload_bytes: (done.frame.len() - HEADER_LEN) as u64,
                    codec: done.codec,
                    crc_us: 0.0,
                    encode_us: done.encode_us,
                    start_us: done.start_us,
                    outcome: FrameOutcome::Written,
                });
            }
            reports.push(ChunkReport {
                index: i,
                input_bytes: chunks[i].len() as u64,
                cycles: done.cycles,
                tokens: done.tokens,
            });
        }
    }

    if frame_cfg.index && n_chunks > 0 {
        let section = encode_index_section(&entries, data.len() as u64, framed.len() as u64);
        framed.extend_from_slice(&section);
    }
    let mut crc = Crc32::new();
    crc.update(data);
    framed.extend_from_slice(&encode_trailer(n_chunks as u32, data.len() as u64, crc.finish()));

    Ok(FramedParallelReport {
        framed,
        frames: n_chunks as u32,
        input_bytes: data.len() as u64,
        chunks: reports,
        failures,
        events,
        counters: cfg.telemetry.then(|| counter_acc.into_inner().expect("counter lock")),
        trace_events: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lzfpga_core::pipeline::compress_to_zlib;
    use lzfpga_deflate::zlib::zlib_decompress;
    use lzfpga_workloads::{generate, Corpus};

    fn cfg(chunk: usize, workers: usize, instances: usize) -> ParallelConfig {
        ParallelConfig {
            chunk_bytes: chunk,
            workers,
            instances,
            hw: HwConfig::paper_fast(),
            engine: EngineKind::Modelled,
            telemetry: false,
        }
    }

    fn turbo_cfg(chunk: usize, workers: usize) -> ParallelConfig {
        ParallelConfig { engine: EngineKind::Turbo, ..cfg(chunk, workers, 1) }
    }

    #[test]
    fn output_is_valid_zlib() {
        let data = generate(Corpus::Wiki, 5, 700_000);
        let rep = compress_parallel(&data, &cfg(128 * 1024, 0, 4)).unwrap();
        assert_eq!(zlib_decompress(&rep.compressed).unwrap(), data);
        assert_eq!(rep.chunks.len(), 6);
    }

    #[test]
    fn worker_count_never_changes_the_bytes() {
        let data = generate(Corpus::X2e, 9, 400_000);
        let baseline = compress_parallel(&data, &cfg(64 * 1024, 1, 1)).unwrap();
        for workers in [2usize, 3, 8] {
            let rep = compress_parallel(&data, &cfg(64 * 1024, workers, workers)).unwrap();
            assert_eq!(rep.compressed, baseline.compressed, "workers = {workers}");
        }
    }

    #[test]
    fn turbo_engine_is_byte_identical_to_the_model() {
        let data = generate(Corpus::Mixed, 11, 500_000);
        let modelled = compress_parallel(&data, &cfg(64 * 1024, 1, 1)).unwrap();
        for workers in [1usize, 2, 4] {
            let turbo = compress_parallel(&data, &turbo_cfg(64 * 1024, workers)).unwrap();
            assert_eq!(turbo.compressed, modelled.compressed, "workers = {workers}");
        }
    }

    #[test]
    fn turbo_reports_no_cycles() {
        let data = generate(Corpus::Wiki, 3, 100_000);
        let rep = compress_parallel(&data, &turbo_cfg(32 * 1024, 2)).unwrap();
        assert_eq!(rep.total_cycles, 0);
        assert_eq!(rep.makespan_cycles, 0);
        assert!((rep.speedup() - 1.0).abs() < f64::EPSILON);
        assert_eq!(rep.mb_per_s(), 0.0);
    }

    #[test]
    fn single_chunk_matches_the_pipeline_exactly() {
        let data = generate(Corpus::LogLines, 3, 100_000);
        let par = compress_parallel(&data, &cfg(1 << 20, 2, 2)).unwrap();
        let single = compress_to_zlib(&data, &HwConfig::paper_fast());
        assert_eq!(par.compressed, single.compressed);
    }

    #[test]
    fn chunking_costs_a_little_ratio() {
        let data = generate(Corpus::Wiki, 7, 600_000);
        let whole = compress_parallel(&data, &cfg(1 << 20, 0, 1)).unwrap();
        let chopped = compress_parallel(&data, &cfg(16 * 1024, 0, 1)).unwrap();
        assert!(chopped.compressed.len() >= whole.compressed.len());
        // ... but only a little: the dictionary warms up in a few KB.
        assert!(
            (chopped.compressed.len() as f64) < whole.compressed.len() as f64 * 1.10,
            "{} vs {}",
            chopped.compressed.len(),
            whole.compressed.len()
        );
    }

    #[test]
    fn multi_engine_speedup_is_near_linear() {
        let data = generate(Corpus::Wiki, 2, 1_200_000);
        let rep4 = compress_parallel(&data, &cfg(64 * 1024, 0, 4)).unwrap();
        assert!(rep4.speedup() > 3.0, "speedup {}", rep4.speedup());
        assert!(rep4.mb_per_s() > 120.0, "{} MB/s", rep4.mb_per_s());
        let rep1 = compress_parallel(&data, &cfg(64 * 1024, 0, 1)).unwrap();
        assert_eq!(rep1.makespan_cycles, rep1.total_cycles);
    }

    #[test]
    fn empty_input_yields_a_valid_empty_stream() {
        let rep = compress_parallel(b"", &cfg(8 * 1024, 2, 2)).unwrap();
        assert_eq!(zlib_decompress(&rep.compressed).unwrap(), b"");
    }

    #[test]
    fn tiny_chunks_rejected() {
        let err = compress_parallel(b"x", &cfg(1024, 1, 1)).unwrap_err();
        assert!(matches!(
            err,
            ParallelError::Config(ParallelConfigError::ChunkTooSmall { chunk_bytes: 1024 })
        ));
        assert!(err.to_string().contains("below 4 KiB"));
    }

    #[test]
    fn zero_instances_rejected() {
        let err = compress_parallel(b"x", &cfg(8 * 1024, 1, 0)).unwrap_err();
        assert!(matches!(err, ParallelError::Config(ParallelConfigError::NoInstances)));
    }

    #[test]
    fn telemetry_is_opt_in_and_never_changes_the_bytes() {
        let data = generate(Corpus::Mixed, 13, 300_000);
        let plain = compress_parallel(&data, &turbo_cfg(32 * 1024, 3)).unwrap();
        assert!(plain.telemetry.is_none());
        let observed = compress_parallel(
            &data,
            &ParallelConfig { telemetry: true, ..turbo_cfg(32 * 1024, 3) },
        )
        .unwrap();
        assert_eq!(observed.compressed, plain.compressed);
        assert!(observed.telemetry.is_some());
    }

    #[test]
    fn telemetry_accounts_for_every_chunk_and_byte() {
        let data = generate(Corpus::Wiki, 8, 400_000);
        let rep = compress_parallel(
            &data,
            &ParallelConfig { telemetry: true, ..turbo_cfg(64 * 1024, 2) },
        )
        .unwrap();
        let t = rep.telemetry.as_ref().unwrap();

        // Workers: every chunk and input byte shows up exactly once.
        assert_eq!(t.workers.len(), 2);
        assert_eq!(t.workers.iter().map(|w| w.chunks).sum::<u64>(), rep.chunks.len() as u64);
        assert_eq!(t.workers.iter().map(|w| w.input_bytes).sum::<u64>(), data.len() as u64);
        let allocs: u64 = t.workers.iter().map(|w| w.freelist_misses).sum();
        let reuses: u64 = t.workers.iter().map(|w| w.freelist_hits).sum();
        assert_eq!(allocs + reuses, rep.chunks.len() as u64);
        assert!(allocs >= 1, "first chunk per worker must allocate");

        // Turbo counters cover the whole input (chunk dictionaries are
        // independent, so coverage still sums to the input size).
        assert_eq!(t.turbo.covered_bytes(), data.len() as u64);
        let tokens: u64 = rep.chunks.iter().map(|c| c.tokens).sum();
        assert_eq!(t.turbo.literals + t.turbo.matches, tokens);

        // The stitcher encoded every chunk; spans exist for each stage.
        let encode_spans =
            t.trace_events.iter().filter(|e| e.cat == "encode" && e.tid == 0).count();
        assert_eq!(encode_spans, rep.chunks.len());
        let compress_spans = t.trace_events.iter().filter(|e| e.cat == "compress").count();
        assert_eq!(compress_spans, rep.chunks.len());
        assert!(t.trace_events.iter().all(|e| e.dur_us >= 0.0 && e.ts_us >= 0.0));
        assert!(t.wall_s > 0.0);
        assert!(t.stitcher.encode_s > 0.0);
        assert!(t.stitcher.freelist_peak >= 1);
    }

    #[test]
    fn clean_runs_report_no_failures() {
        let data = generate(Corpus::Wiki, 4, 120_000);
        let rep = compress_parallel(&data, &turbo_cfg(32 * 1024, 2)).unwrap();
        assert!(rep.failures.is_clean());
        assert_eq!(rep.failures.attempts, rep.chunks.len() as u64);
    }

    #[test]
    fn injected_worker_panic_still_yields_correct_bytes() {
        use lzfpga_faults::{FailPlan, FailRule};
        // The acceptance drill: 8 chunks on 4 workers, one injected panic.
        let data = generate(Corpus::Mixed, 21, 256_000);
        let clean = compress_parallel(&data, &turbo_cfg(32 * 1024, 4)).unwrap();
        assert_eq!(clean.chunks.len(), 8);

        let plan = FailPlan::new(7).rule(FailRule::new("parallel.worker.chunk").on_hit(3).panics());
        let rep = compress_parallel_with(&data, &turbo_cfg(32 * 1024, 4), &plan).unwrap();
        assert_eq!(rep.compressed, clean.compressed);
        assert_eq!(zlib_decompress(&rep.compressed).unwrap(), data);

        // Exactly the injected fault shows up, nothing else: one panic,
        // one retry that succeeds, no degradation to the reference engine.
        assert_eq!(rep.failures.attempts, 9);
        assert_eq!(rep.failures.retries, 1);
        assert_eq!(rep.failures.worker_restarts, 1);
        assert_eq!(rep.failures.injected_errors, 0);
        assert!(rep.failures.degraded_chunks.is_empty());
        assert!(rep.failures.failed_chunks.is_empty());
        assert_eq!(rep.failures.injected.len(), 1);
        assert_eq!(rep.failures.injected[0].site, "parallel.worker.chunk");
    }

    #[test]
    fn repeated_faults_degrade_a_chunk_to_the_reference_engine() {
        use lzfpga_faults::{FailPlan, FailRule};
        let data = generate(Corpus::Wiki, 6, 256_000);
        let clean = compress_parallel(&data, &turbo_cfg(32 * 1024, 1)).unwrap();
        assert_eq!(clean.chunks.len(), 8);

        // Workers = 1 makes the global hit order deterministic: hit 3 is
        // chunk 2's first attempt, hit 4 its retry, so chunk 2 degrades.
        let plan = FailPlan::new(11)
            .rule(FailRule::new("parallel.worker.chunk").on_hit(3).times(2).errors());
        let rep = compress_parallel_with(&data, &turbo_cfg(32 * 1024, 1), &plan).unwrap();
        assert_eq!(rep.compressed, clean.compressed, "reference fallback is token-identical");
        assert_eq!(rep.failures.attempts, 10);
        assert_eq!(rep.failures.retries, 1);
        assert_eq!(rep.failures.injected_errors, 2);
        assert_eq!(rep.failures.degraded_chunks, vec![2]);
        assert!(rep.failures.failed_chunks.is_empty());
        assert_eq!(rep.failures.worker_restarts, 0);
    }

    #[test]
    fn a_chunk_that_fails_every_attempt_fails_the_job() {
        use lzfpga_faults::{FailPlan, FailRule};
        let data = generate(Corpus::LogLines, 2, 40_000);
        let plan = FailPlan::new(3)
            .rule(FailRule::new("parallel.worker.chunk").on_hit(1).times(3).errors());
        let err = compress_parallel_with(&data, &turbo_cfg(8 * 1024, 1), &plan).unwrap_err();
        assert!(matches!(err, ParallelError::ChunkFailed { index: 0, attempts: 3 }));
        assert_eq!(err.to_string(), "chunk 0 failed after 3 attempts");
    }

    #[test]
    fn modelled_engine_survives_injected_faults_too() {
        use lzfpga_faults::{FailPlan, FailRule};
        let data = generate(Corpus::X2e, 8, 100_000);
        let clean = compress_parallel(&data, &cfg(32 * 1024, 1, 1)).unwrap();
        let plan = FailPlan::new(5).rule(FailRule::new("parallel.worker.chunk").on_hit(2).panics());
        let rep = compress_parallel_with(&data, &cfg(32 * 1024, 1, 1), &plan).unwrap();
        assert_eq!(rep.compressed, clean.compressed);
        assert_eq!(rep.failures.worker_restarts, 1);
        assert_eq!(rep.failures.retries, 1);
    }

    #[test]
    fn modelled_engine_telemetry_reports_worker_time_without_turbo_counters() {
        let data = generate(Corpus::X2e, 5, 150_000);
        let rep =
            compress_parallel(&data, &ParallelConfig { telemetry: true, ..cfg(32 * 1024, 2, 2) })
                .unwrap();
        let t = rep.telemetry.as_ref().unwrap();
        assert!(t.workers.iter().map(|w| w.busy_s).sum::<f64>() > 0.0);
        assert_eq!(t.turbo.covered_bytes(), 0, "modelled path has no turbo probes");
        assert_eq!(t.workers.iter().map(|w| w.freelist_hits + w.freelist_misses).sum::<u64>(), 0);
    }

    #[test]
    fn framed_parallel_matches_the_single_threaded_frame_writer() {
        use lzfpga_container::FrameWriter;
        use std::io::Write as _;
        let data = generate(Corpus::Mixed, 31, 500_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 64 * 1024, collect_events: false, ..FrameConfig::default() };
        let mut w =
            FrameWriter::new(Vec::new(), frame_cfg, HwConfig::paper_fast().as_lzss_params())
                .unwrap();
        w.write_all(&data).unwrap();
        let (serial, _) = w.finish().unwrap();
        for workers in [1usize, 2, 4] {
            let rep = compress_frames_parallel(&data, &turbo_cfg(64 * 1024, workers), &frame_cfg)
                .unwrap();
            assert_eq!(rep.framed, serial, "workers = {workers}");
        }
        // The modelled engine is token-identical, so the frames match too.
        let modelled = compress_frames_parallel(&data, &cfg(64 * 1024, 2, 2), &frame_cfg).unwrap();
        assert_eq!(modelled.framed, serial);
        assert!(modelled.chunks.iter().map(|c| c.cycles).sum::<u64>() > 0);
    }

    #[test]
    fn framed_parallel_roundtrips_through_both_decoders() {
        let data = generate(Corpus::Wiki, 33, 700_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 128 * 1024, collect_events: true, ..FrameConfig::default() };
        let rep = compress_frames_parallel(&data, &turbo_cfg(128 * 1024, 0), &frame_cfg).unwrap();
        assert_eq!(rep.frames, 6);
        assert_eq!(rep.events.len(), 6);
        assert_eq!(lzfpga_container::unframe(&rep.framed).unwrap(), data);
        for workers in [0usize, 1, 3] {
            assert_eq!(
                decompress_frames_parallel(&rep.framed, workers).unwrap(),
                data,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn framed_telemetry_builds_one_causal_span_tree() {
        let data = generate(Corpus::Mixed, 5, 300_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 64 * 1024, collect_events: true, ..FrameConfig::default() };
        let cfg = ParallelConfig { telemetry: true, ..turbo_cfg(64 * 1024, 3) };
        let plain = compress_frames_parallel(&data, &turbo_cfg(64 * 1024, 3), &frame_cfg).unwrap();
        let rep = compress_frames_parallel(&data, &cfg, &frame_cfg).unwrap();
        assert_eq!(rep.framed, plain.framed, "telemetry never changes bytes");
        assert!(plain.trace_events.is_empty());
        assert!(plain.counters.is_none());

        // Counters aggregate the probed engines across all frames.
        let counters = rep.counters.as_ref().expect("telemetry collects counters");
        assert_eq!(counters.covered_bytes(), data.len() as u64);

        // One root span, one frame span per frame parented to it, stage
        // children parented to their frame.
        let span_of = |e: &TraceEvent, key: &str| {
            e.args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| v.as_i64()).unwrap_or(-1)
        };
        let roots: Vec<_> = rep.trace_events.iter().filter(|e| span_of(e, "parent") == 0).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(span_of(roots[0], "span_id"), i64::from(ROOT_SPAN as u32));
        for i in 0..rep.frames as u64 {
            let id = frame_span(i) as i64;
            let frame = rep
                .trace_events
                .iter()
                .find(|e| e.cat == "frame" && span_of(e, "span_id") == id)
                .unwrap_or_else(|| panic!("frame span {i} missing"));
            assert_eq!(span_of(frame, "parent"), i64::from(ROOT_SPAN as u32));
            let children = rep.trace_events.iter().filter(|e| span_of(e, "parent") == id).count();
            assert!(children >= 2, "frame {i} wants tokens+encode stage children");
        }
        // Frame events carry pickup timestamps for serial tree rebuilds.
        assert!(rep.events.iter().all(|e| e.start_us >= 0.0));
    }

    #[test]
    fn framed_parallel_empty_input_is_a_bare_trailer() {
        let frame_cfg = FrameConfig::default();
        let rep = compress_frames_parallel(b"", &turbo_cfg(256 * 1024, 2), &frame_cfg).unwrap();
        assert_eq!(rep.frames, 0);
        assert_eq!(rep.framed.len(), HEADER_LEN);
        assert_eq!(decompress_frames_parallel(&rep.framed, 2).unwrap(), b"");
    }

    #[test]
    fn framed_parallel_survives_injected_panics_byte_exactly() {
        use lzfpga_faults::{FailPlan, FailRule};
        let data = generate(Corpus::LogLines, 35, 256_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 32 * 1024, collect_events: false, ..FrameConfig::default() };
        let clean = compress_frames_parallel(&data, &turbo_cfg(32 * 1024, 4), &frame_cfg).unwrap();
        let plan = FailPlan::new(9).rule(FailRule::new("parallel.frame.chunk").on_hit(3).panics());
        let rep = compress_frames_parallel_with(&data, &turbo_cfg(32 * 1024, 4), &frame_cfg, &plan)
            .unwrap();
        assert_eq!(rep.framed, clean.framed);
        assert_eq!(rep.failures.worker_restarts, 1);
        assert_eq!(rep.failures.retries, 1);
        assert_eq!(rep.failures.injected[0].site, "parallel.frame.chunk");
        // A frame that fails every rung fails the job with its index.
        let plan = FailPlan::new(4)
            .rule(FailRule::new("parallel.frame.chunk").on_hit(1).times(3).errors());
        let err = compress_frames_parallel_with(&data, &turbo_cfg(32 * 1024, 1), &frame_cfg, &plan)
            .unwrap_err();
        assert!(matches!(err, ParallelError::ChunkFailed { index: 0, attempts: 3 }));
    }

    #[test]
    fn framed_parallel_rejects_bad_frame_sizes() {
        let small =
            FrameConfig { frame_bytes: 1024, collect_events: false, ..FrameConfig::default() };
        assert!(matches!(
            compress_frames_parallel(b"x", &turbo_cfg(32 * 1024, 1), &small),
            Err(ParallelError::Config(ParallelConfigError::ChunkTooSmall { chunk_bytes: 1024 }))
        ));
        let huge = FrameConfig {
            frame_bytes: lzfpga_container::MAX_FRAME_BYTES + 1,
            collect_events: false,
            ..FrameConfig::default()
        };
        let err = compress_frames_parallel(b"x", &turbo_cfg(32 * 1024, 1), &huge).unwrap_err();
        assert!(err.to_string().contains("MAX_FRAME_BYTES"));
    }

    #[test]
    fn parallel_decode_reports_the_lowest_damaged_frame() {
        let data = generate(Corpus::JsonTelemetry, 37, 300_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 32 * 1024, collect_events: false, ..FrameConfig::default() };
        let rep = compress_frames_parallel(&data, &turbo_cfg(32 * 1024, 2), &frame_cfg).unwrap();
        let spans = lzfpga_container::frame_spans(&rep.framed).unwrap();
        let mut bad = rep.framed.clone();
        bad[spans[2].payload_start] ^= 0x40;
        bad[spans[5].payload_start] ^= 0x40;
        let err = decompress_frames_parallel(&bad, 4).unwrap_err();
        assert!(
            matches!(err, ContainerError::PayloadCrc { seq: 2, .. }),
            "expected frame 2 first, got {err}"
        );
    }

    #[test]
    fn batched_streams_match_single_stream_turbo_for_any_lane_width() {
        use lzfpga_core::pipeline::turbo_compress_to_zlib;
        let inputs: Vec<Vec<u8>> = vec![
            generate(Corpus::Wiki, 1, 90_000),
            generate(Corpus::X2e, 2, 40_000),
            Vec::new(),
            generate(Corpus::Mixed, 3, 130_000),
            generate(Corpus::LogLines, 4, 20_000),
        ];
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let expect: Vec<Vec<u8>> =
            refs.iter().map(|d| turbo_compress_to_zlib(d, &HwConfig::paper_fast())).collect();
        for lanes in [1usize, 2, 4, 8] {
            for workers in [1usize, 3] {
                let rep = compress_batch(&refs, &turbo_cfg(64 * 1024, workers), lanes).unwrap();
                assert_eq!(rep.streams, expect, "lanes={lanes} workers={workers}");
                assert_eq!(rep.lanes, lanes);
                assert!(rep.failures.is_clean());
            }
        }
        for (stream, input) in expect.iter().zip(&inputs) {
            assert_eq!(&zlib_decompress(stream).unwrap(), input);
        }
    }

    #[test]
    fn batched_telemetry_reports_dispatch_and_occupancy() {
        let inputs: Vec<Vec<u8>> = (0..6).map(|i| generate(Corpus::Mixed, i, 50_000)).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let cfg = ParallelConfig { telemetry: true, ..turbo_cfg(64 * 1024, 1) };
        let rep = compress_batch(&refs, &cfg, 3).unwrap();
        let c = rep.counters.as_ref().unwrap();
        assert_eq!(c.covered_bytes(), rep.input_bytes);
        assert_eq!(c.dispatches(), 2, "two groups of three lanes");
        assert_eq!(c.lane_occupancy.max(), 3);
        let plain = compress_batch(&refs, &turbo_cfg(64 * 1024, 1), 3).unwrap();
        assert!(plain.counters.is_none());
        assert_eq!(plain.streams, rep.streams, "telemetry never changes bytes");
    }

    #[test]
    fn batched_rejects_zero_lanes_and_empty_batch_is_empty() {
        let err = compress_batch(&[], &turbo_cfg(64 * 1024, 1), 0).unwrap_err();
        assert!(matches!(err, ParallelError::Config(ParallelConfigError::NoLanes)));
        let rep = compress_batch(&[], &turbo_cfg(64 * 1024, 1), 4).unwrap();
        assert!(rep.streams.is_empty());
        assert_eq!(rep.input_bytes, 0);
    }

    #[test]
    fn batched_frames_match_the_frame_writer_for_any_lane_width() {
        use lzfpga_container::FrameWriter;
        use std::io::Write as _;
        let data = generate(Corpus::Mixed, 31, 500_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 64 * 1024, collect_events: false, ..FrameConfig::default() };
        let mut w =
            FrameWriter::new(Vec::new(), frame_cfg, HwConfig::paper_fast().as_lzss_params())
                .unwrap();
        w.write_all(&data).unwrap();
        let (serial, _) = w.finish().unwrap();
        for lanes in [1usize, 2, 4, 16] {
            for workers in [1usize, 2] {
                let rep = compress_frames_batched(
                    &data,
                    &turbo_cfg(64 * 1024, workers),
                    &frame_cfg,
                    lanes,
                )
                .unwrap();
                assert_eq!(rep.framed, serial, "lanes={lanes} workers={workers}");
                assert_eq!(rep.frames, 8);
            }
        }
        assert_eq!(lzfpga_container::unframe(&serial).unwrap(), data);
    }

    #[test]
    fn batched_frames_roundtrip_with_events_counters_and_empty_input() {
        let data = generate(Corpus::JsonTelemetry, 41, 300_000);
        let frame_cfg =
            FrameConfig { frame_bytes: 32 * 1024, collect_events: true, ..FrameConfig::default() };
        let cfg = ParallelConfig { telemetry: true, ..turbo_cfg(32 * 1024, 2) };
        let rep = compress_frames_batched(&data, &cfg, &frame_cfg, 4).unwrap();
        assert_eq!(rep.events.len(), rep.frames as usize);
        assert_eq!(decompress_frames_parallel(&rep.framed, 2).unwrap(), data);
        let c = rep.counters.as_ref().unwrap();
        assert_eq!(c.covered_bytes(), data.len() as u64);
        assert!(c.lane_occupancy.max() >= 1);
        assert_eq!(c.dispatches(), rep.frames.div_ceil(4) as u64);

        let empty = compress_frames_batched(b"", &turbo_cfg(32 * 1024, 2), &frame_cfg, 4).unwrap();
        assert_eq!(empty.frames, 0);
        assert_eq!(empty.framed.len(), HEADER_LEN);
        assert_eq!(decompress_frames_parallel(&empty.framed, 1).unwrap(), b"");
    }

    #[test]
    fn cycle_accounting_sums() {
        let data = generate(Corpus::SensorFrames, 4, 300_000);
        let rep = compress_parallel(&data, &cfg(64 * 1024, 0, 3)).unwrap();
        let sum: u64 = rep.chunks.iter().map(|c| c.cycles).sum();
        assert_eq!(sum, rep.total_cycles);
        assert!(rep.makespan_cycles <= rep.total_cycles);
        assert!(rep.makespan_cycles >= rep.total_cycles / 3);
    }
}
