//! Decision helpers over sweep results: Pareto filtering, budget-constrained
//! selection, and the named presets the paper's interactive tool ships.
//!
//! The paper frames the tool's purpose as "finding a trade-off between FPGA
//! resource utilization, compression ratio and performance for a specific
//! data sample" — three objectives. This module turns a sweep's raw rows
//! into those decisions.

use crate::sweep::{EstimatePoint, EstimateResult};
use lzfpga_core::HwConfig;
use lzfpga_lzss::params::CompressionLevel;

/// What to optimise when picking a single configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Maximise compression ratio.
    Ratio,
    /// Maximise modelled throughput.
    Speed,
    /// Maximise `ratio^weight * speed` — `weight > 1` leans toward ratio.
    Balanced {
        /// Exponent applied to the ratio term.
        weight: f64,
    },
}

impl Objective {
    fn score(&self, r: &EstimateResult) -> f64 {
        match *self {
            Objective::Ratio => r.ratio,
            Objective::Speed => r.mb_per_s,
            Objective::Balanced { weight } => r.ratio.powf(weight) * r.mb_per_s,
        }
    }
}

/// Pick the best result under a block-RAM budget (RAMB36 equivalents).
/// Returns `None` when nothing fits.
pub fn best_under_budget(
    results: &[EstimateResult],
    bram36_budget: f64,
    objective: Objective,
) -> Option<&EstimateResult> {
    results
        .iter()
        .filter(|r| r.bram36_equiv <= bram36_budget)
        .max_by(|a, b| objective.score(a).total_cmp(&objective.score(b)))
}

/// `a` dominates `b` when it is no worse on all three axes (ratio ↑,
/// speed ↑, BRAM ↓) and strictly better on at least one.
fn dominates(a: &EstimateResult, b: &EstimateResult) -> bool {
    let ge = a.ratio >= b.ratio && a.mb_per_s >= b.mb_per_s && a.bram36_equiv <= b.bram36_equiv;
    let gt = a.ratio > b.ratio || a.mb_per_s > b.mb_per_s || a.bram36_equiv < b.bram36_equiv;
    ge && gt
}

/// The Pareto-efficient subset of a sweep (ratio ↑, speed ↑, BRAM ↓),
/// in the input order.
pub fn pareto_front(results: &[EstimateResult]) -> Vec<&EstimateResult> {
    results
        .iter()
        .filter(|candidate| !results.iter().any(|other| dominates(other, candidate)))
        .collect()
}

/// Named presets mirroring the paper's tool: each is a starting point for a
/// class of deployment.
pub fn presets() -> Vec<EstimatePoint> {
    let named =
        |label: &str, cfg: HwConfig| EstimatePoint { label: label.to_string(), config: cfg };
    vec![
        // Table I's operating point.
        named("paper-fast", HwConfig::paper_fast()),
        // Smallest footprint that still compresses usefully.
        named("tiny", {
            let mut c = HwConfig::new(1_024, 9);
            c.head_divisions = 4;
            c
        }),
        // Balanced logger: mid window, mid hash.
        named("balanced", HwConfig::new(8_192, 13)),
        // Ratio-leaning: big window, deep chains.
        named("ratio", {
            let mut c = HwConfig::new(16_384, 15);
            c.level = CompressionLevel::Max;
            c
        }),
        // Byte-serial minimal-logic build (the [11] shape).
        named("minimal-logic", {
            let mut c = HwConfig::new(4_096, 11).with_8bit_bus().without_prefetch();
            c.head_divisions = 1;
            c
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{evaluate, grid_points, run_sweep};
    use lzfpga_workloads::{generate, Corpus};

    fn sweep() -> Vec<EstimateResult> {
        let data = generate(Corpus::Wiki, 5, 300_000);
        let points = grid_points(&[1_024, 4_096, 16_384], &[9, 13, 15], CompressionLevel::Min);
        run_sweep(&data, &points, 0)
    }

    #[test]
    fn budget_selection_respects_the_budget() {
        let results = sweep();
        for budget in [8.0f64, 12.0, 24.0, 64.0] {
            if let Some(best) = best_under_budget(&results, budget, Objective::Ratio) {
                assert!(best.bram36_equiv <= budget);
                // Nothing under budget compresses better.
                for r in &results {
                    if r.bram36_equiv <= budget {
                        assert!(r.ratio <= best.ratio + 1e-12);
                    }
                }
            }
        }
        assert!(best_under_budget(&results, 0.5, Objective::Ratio).is_none());
    }

    #[test]
    fn objectives_pick_different_winners() {
        let results = sweep();
        let ratio = best_under_budget(&results, 64.0, Objective::Ratio).unwrap();
        let speed = best_under_budget(&results, 64.0, Objective::Speed).unwrap();
        assert!(ratio.ratio >= speed.ratio);
        assert!(speed.mb_per_s >= ratio.mb_per_s);
    }

    #[test]
    fn pareto_front_is_nonempty_and_mutually_nondominated() {
        let results = sweep();
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        assert!(front.len() < results.len(), "a full grid always has dominated points");
        for a in &front {
            for b in &front {
                assert!(!dominates(a, b) || std::ptr::eq(*a, *b));
            }
        }
        // Extremes always survive.
        let max_ratio = results.iter().map(|r| r.ratio).fold(0.0, f64::max);
        assert!(front.iter().any(|r| r.ratio == max_ratio));
    }

    #[test]
    fn presets_validate_and_span_the_space() {
        let data = generate(Corpus::X2e, 3, 100_000);
        let results: Vec<_> = presets().iter().map(|p| evaluate(&data, p)).collect();
        let tiny = results.iter().find(|r| r.label == "tiny").unwrap();
        let ratio = results.iter().find(|r| r.label == "ratio").unwrap();
        let fast = results.iter().find(|r| r.label == "paper-fast").unwrap();
        assert!(tiny.bram36_equiv < fast.bram36_equiv);
        assert!(ratio.ratio > tiny.ratio);
        assert!(fast.mb_per_s > ratio.mb_per_s);
    }
}
