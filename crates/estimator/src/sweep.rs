//! Parameter-series construction and the sweep runner.

use lzfpga_core::config::CLOCK_HZ;
use lzfpga_core::pipeline::compress_to_zlib;
use lzfpga_core::stats::{HwState, NUM_STATES};
use lzfpga_core::HwConfig;
use lzfpga_lzss::params::CompressionLevel;

/// One parameter set to evaluate, with a display label.
#[derive(Debug, Clone)]
pub struct EstimatePoint {
    /// Label shown in reports (e.g. `"4K/15b/min"`).
    pub label: String,
    /// The hardware configuration.
    pub config: HwConfig,
}

impl EstimatePoint {
    /// Point with an auto-generated label.
    pub fn new(config: HwConfig) -> Self {
        let level = match config.level {
            CompressionLevel::Min => "min",
            CompressionLevel::Medium => "med",
            CompressionLevel::Max => "max",
        };
        Self {
            label: format!("{}K/{}b/{}", config.window_size / 1024, config.hash_bits, level),
            config,
        }
    }
}

/// Metrics from evaluating one point.
#[derive(Debug, Clone)]
pub struct EstimateResult {
    /// The evaluated point.
    pub label: String,
    /// The configuration evaluated.
    pub config: HwConfig,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Compressed output size in bytes (zlib-framed).
    pub compressed_bytes: u64,
    /// Compression ratio (input/output).
    pub ratio: f64,
    /// Total clock cycles.
    pub cycles: u64,
    /// Average cycles per input byte.
    pub cycles_per_byte: f64,
    /// Throughput at the 100 MHz design clock, in MB/s.
    pub mb_per_s: f64,
    /// Block RAM usage in RAMB36-equivalents.
    pub bram36_equiv: f64,
    /// Estimated LUTs.
    pub luts: u32,
    /// Per-state share of total cycles, indexed by `HwState` discriminant.
    pub state_shares: [f64; NUM_STATES],
}

impl EstimateResult {
    /// Share of cycles spent in `state`.
    pub fn share(&self, state: HwState) -> f64 {
        self.state_shares[state as usize]
    }
}

/// Evaluate one point on `data`.
pub fn evaluate(data: &[u8], point: &EstimatePoint) -> EstimateResult {
    let rep = compress_to_zlib(data, &point.config);
    let mut state_shares = [0.0; NUM_STATES];
    for (i, share) in state_shares.iter_mut().enumerate() {
        *share = rep.run.stats.rows()[i].2;
    }
    EstimateResult {
        label: point.label.clone(),
        config: point.config,
        input_bytes: rep.run.input_bytes,
        compressed_bytes: rep.compressed.len() as u64,
        ratio: rep.ratio(),
        cycles: rep.run.cycles,
        cycles_per_byte: rep.run.cycles_per_byte(),
        mb_per_s: rep.run.mb_per_s(CLOCK_HZ),
        bram36_equiv: rep.resources.bram.ramb36_equiv(),
        luts: rep.resources.luts,
        state_shares,
    }
}

/// Run all points over `data`, distributing across `threads` OS threads
/// (`std::thread::scope`; results keep input order).
pub fn run_sweep(data: &[u8], points: &[EstimatePoint], threads: usize) -> Vec<EstimateResult> {
    let threads = threads.max(1).min(points.len().max(1));
    if threads <= 1 || points.len() <= 1 {
        return points.iter().map(|p| evaluate(data, p)).collect();
    }
    // Self-scheduling over an atomic index: threads claim points one at a
    // time (configurations differ wildly in cost, so static chunking would
    // leave cores idle) and file results into index-keyed slots behind one
    // mutex — contention is negligible next to the cost of `evaluate`.
    let results: std::sync::Mutex<Vec<Option<EstimateResult>>> =
        std::sync::Mutex::new(vec![None; points.len()]);
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let r = evaluate(data, &points[i]);
                results.lock().expect("sweep slot lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep slot lock")
        .into_iter()
        .map(|r| r.expect("all points evaluated"))
        .collect()
}

/// Series builder: the Fig. 2/3 grid — every (dictionary, hash) pair.
pub fn grid_points(dicts: &[u32], hashes: &[u32], level: CompressionLevel) -> Vec<EstimatePoint> {
    let mut points = Vec::new();
    for &h in hashes {
        for &d in dicts {
            points.push(EstimatePoint::new(HwConfig::new(d, h).with_level(level)));
        }
    }
    points
}

/// Series builder: the Fig. 4 level study — min/max level at given hashes.
pub fn level_points(dicts: &[u32], hashes: &[u32]) -> Vec<EstimatePoint> {
    let mut points = Vec::new();
    for &level in &[CompressionLevel::Min, CompressionLevel::Max] {
        for &h in hashes {
            for &d in dicts {
                points.push(EstimatePoint::new(HwConfig::new(d, h).with_level(level)));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        lzfpga_workloads::wiki::generate(9, 200_000)
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let data = sample();
        let r = evaluate(&data, &EstimatePoint::new(HwConfig::paper_fast()));
        assert_eq!(r.input_bytes, data.len() as u64);
        assert!(r.ratio > 1.0);
        assert!((r.mb_per_s - 100.0 / r.cycles_per_byte).abs() < 0.5);
        let share_sum: f64 = r.state_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
    }

    #[test]
    fn labels_are_descriptive() {
        let p = EstimatePoint::new(HwConfig::new(8_192, 13));
        assert_eq!(p.label, "8K/13b/min");
    }

    #[test]
    fn grid_points_cover_the_cross_product() {
        let pts = grid_points(&[1_024, 4_096], &[9, 15], CompressionLevel::Min);
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let data = sample();
        let pts = grid_points(&[2_048, 4_096], &[11, 13], CompressionLevel::Min);
        let serial = run_sweep(&data, &pts, 1);
        let parallel = run_sweep(&data, &pts, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.cycles, b.cycles, "{}", a.label);
            assert_eq!(a.compressed_bytes, b.compressed_bytes);
        }
    }

    #[test]
    fn bigger_dictionary_improves_ratio() {
        let data = sample();
        let pts = grid_points(&[1_024, 16_384], &[15], CompressionLevel::Min);
        let res = run_sweep(&data, &pts, 2);
        assert!(res[1].ratio > res[0].ratio, "16K {} !> 1K {}", res[1].ratio, res[0].ratio);
    }
}
