//! `lzfpga-estimate` — the interactive estimation tool (CLI form).
//!
//! Compresses a sample (generated corpus or a file) under one or more
//! parameter sets and reports block-RAM amount, compression ratio and
//! clock-cycle usage, like the paper's design-space exploration tool.
//!
//! ```text
//! lzfpga-estimate [--corpus wiki|x2e-can|log-lines|random] [--file PATH]
//!                 [--size BYTES] [--seed N]
//!                 [--dicts 1024,2048,4096,8192,16384] [--hashes 9,11,13,15]
//!                 [--levels min,max] [--threads N] [--csv]
//! ```

use lzfpga_core::HwConfig;
use lzfpga_estimator::sweep::{run_sweep, EstimatePoint};
use lzfpga_estimator::{render_csv, render_table};
use lzfpga_lzss::params::CompressionLevel;
use lzfpga_workloads::Corpus;

struct Args {
    presets: bool,
    pareto: bool,
    series: Option<lzfpga_estimator::Metric>,
    budget: Option<f64>,
    corpus: Corpus,
    file: Option<String>,
    size: usize,
    seed: u64,
    dicts: Vec<u32>,
    hashes: Vec<u32>,
    levels: Vec<CompressionLevel>,
    threads: usize,
    csv: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            presets: false,
            pareto: false,
            series: None,
            budget: None,
            corpus: Corpus::Wiki,
            file: None,
            size: 4_000_000,
            seed: 1,
            dicts: vec![1_024, 2_048, 4_096, 8_192, 16_384],
            hashes: vec![9, 11, 13, 15],
            levels: vec![CompressionLevel::Min],
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            csv: false,
        }
    }
}

fn parse_level(s: &str) -> Result<CompressionLevel, String> {
    match s {
        "min" | "fast" => Ok(CompressionLevel::Min),
        "med" | "medium" => Ok(CompressionLevel::Medium),
        "max" | "best" => Ok(CompressionLevel::Max),
        other => Err(format!("unknown level '{other}' (use min|medium|max)")),
    }
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|part| part.trim().parse().map_err(|_| format!("bad {what} value '{part}'")))
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--corpus" => {
                let v = value("--corpus")?;
                args.corpus = Corpus::parse(&v).ok_or_else(|| format!("unknown corpus '{v}'"))?;
            }
            "--file" => args.file = Some(value("--file")?),
            "--size" => args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--dicts" => args.dicts = parse_list(&value("--dicts")?, "dictionary")?,
            "--hashes" => args.hashes = parse_list(&value("--hashes")?, "hash-bits")?,
            "--levels" => {
                args.levels = value("--levels")?
                    .split(',')
                    .map(|s| parse_level(s.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--csv" => args.csv = true,
            "--presets" => args.presets = true,
            "--pareto" => args.pareto = true,
            "--series" => {
                args.series = Some(match value("--series")?.as_str() {
                    "size" => lzfpga_estimator::Metric::CompressedMb,
                    "speed" => lzfpga_estimator::Metric::MbPerS,
                    "ratio" => lzfpga_estimator::Metric::Ratio,
                    "bram" => lzfpga_estimator::Metric::Bram36,
                    other => return Err(format!("unknown series metric '{other}'")),
                })
            }
            "--budget" => {
                args.budget =
                    Some(value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?)
            }
            "--interactive" | "-i" => {
                run_interactive();
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "lzfpga-estimate: design-space exploration for the LZSS FPGA compressor\n\n\
                     Options:\n  --corpus NAME    wiki | x2e-can | log-lines | random | periodic-N (default wiki)\n  \
                     --file PATH      use a file instead of a generated corpus\n  \
                     --size BYTES     sample size (default 4000000)\n  \
                     --seed N         generator seed (default 1)\n  \
                     --dicts LIST     dictionary sizes, comma separated\n  \
                     --hashes LIST    hash widths in bits, comma separated\n  \
                     --levels LIST    min | medium | max (default min)\n  \
                     --threads N      sweep parallelism\n  \
                     --csv            CSV output instead of a table\n  \
                     --presets        evaluate the named presets instead of a grid\n  \
                     --pareto         keep only Pareto-efficient rows\n  \
                     --budget N       report best ratio/speed under N RAMB36\n  \
                     --series M       figure-style pivot (size|speed|ratio|bram)\n  \
                     --interactive    start the command shell (type 'help' inside)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// The interactive front-end loop: read a line, execute, print, repeat.
fn run_interactive() {
    use std::io::{BufRead, Write};
    let mut shell = lzfpga_estimator::Shell::new();
    let stdin = std::io::stdin();
    print!("lzfpga> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let (out, quit) = shell.execute(&line);
        if !out.is_empty() {
            println!("{out}");
        }
        if quit {
            return;
        }
        print!("lzfpga> ");
        std::io::stdout().flush().ok();
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let data = match &args.file {
        Some(path) => match std::fs::read(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => lzfpga_workloads::generate(args.corpus, args.seed, args.size),
    };

    let mut points = Vec::new();
    if args.presets {
        points.extend(lzfpga_estimator::presets());
    } else {
        for &level in &args.levels {
            for &h in &args.hashes {
                for &d in &args.dicts {
                    points.push(EstimatePoint::new(HwConfig::new(d, h).with_level(level)));
                }
            }
        }
    }

    eprintln!(
        "evaluating {} parameter sets over {} bytes on {} threads...",
        points.len(),
        data.len(),
        args.threads
    );
    let mut results = run_sweep(&data, &points, args.threads);
    if args.pareto {
        let front: Vec<_> = lzfpga_estimator::pareto_front(&results).into_iter().cloned().collect();
        results = front;
    }
    if let Some(metric) = args.series {
        print!("{}", lzfpga_estimator::render_series(&results, metric));
    } else if args.csv {
        print!("{}", render_csv(&results));
    } else {
        print!("{}", render_table(&results));
    }
    if let Some(budget) = args.budget {
        for (label, objective) in [
            ("best ratio", lzfpga_estimator::Objective::Ratio),
            ("fastest", lzfpga_estimator::Objective::Speed),
        ] {
            match lzfpga_estimator::best_under_budget(&results, budget, objective) {
                Some(best) => println!(
                    "{label} within {budget} RAMB36: {} (ratio {:.3}, {:.1} MB/s, {:.1} RAMB36)",
                    best.label, best.ratio, best.mb_per_s, best.bram36_equiv
                ),
                None => println!("{label}: nothing fits within {budget} RAMB36"),
            }
        }
    }
}
