//! Design-space exploration tool — the Rust counterpart of the paper's
//! "interactive estimation tool" \[17\].
//!
//! The paper ships a cycle-accurate C++ model plus a C# front-end that
//! "allows constructing series of parameter sets (e.g. iterating an
//! arbitrary parameter over a given range), iteratively runs the C++ model
//! and visualizes the obtained results". Here:
//!
//! * [`sweep`] — parameter-series construction and the (multi-threaded)
//!   sweep runner over the cycle-accurate model;
//! * [`explore`] — Pareto filtering, BRAM-budget selection and named presets;
//! * [`interactive`] — the command shell behind `lzfpga-estimate
//!   --interactive` (the C# front-end's role);
//! * [`report`] — fixed-width table and CSV rendering of the results,
//!   including block-RAM usage, compression ratio and clock-cycle usage —
//!   the three axes the paper's tool reports.
//!
//! The `lzfpga-estimate` binary wraps both behind a CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod interactive;
pub mod report;
pub mod sweep;

pub use explore::{best_under_budget, pareto_front, presets, Objective};
pub use interactive::Shell;
pub use report::{render_csv, render_series, render_table, Metric};
pub use sweep::{run_sweep, EstimatePoint, EstimateResult};
