//! Interactive estimation shell — the Rust counterpart of the paper's C#
//! front-end that "allows constructing series of parameter sets, iteratively
//! runs the C++ model and visualizes the obtained results".
//!
//! The shell holds a data sample and a result table; commands mutate them:
//!
//! ```text
//! data <corpus> <bytes> [seed]    load a generated sample
//! file <path>                     load a file as the sample
//! sweep dicts=1k,4k hashes=9,15 [levels=min,max]
//! presets                         evaluate the named presets
//! show                            render the result table
//! csv                             render results as CSV
//! pareto                          show only the Pareto-efficient rows
//! best <bram36-budget> [ratio|speed]
//! clear                           drop accumulated results
//! help / quit
//! ```
//!
//! [`Shell::execute`] is a pure-ish command interpreter returning the text
//! to display, so the whole surface is unit-testable without a TTY;
//! `lzfpga-estimate --interactive` wires it to stdin.

use crate::explore::{best_under_budget, pareto_front, presets, Objective};
use crate::report::{render_csv, render_table};
use crate::sweep::{evaluate, run_sweep, EstimatePoint, EstimateResult};
use lzfpga_core::HwConfig;
use lzfpga_lzss::params::CompressionLevel;
use lzfpga_workloads::Corpus;

/// Interactive session state.
pub struct Shell {
    data: Vec<u8>,
    data_desc: String,
    results: Vec<EstimateResult>,
    threads: usize,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// Fresh shell with an empty sample.
    pub fn new() -> Self {
        Self { data: Vec::new(), data_desc: "(none)".into(), results: Vec::new(), threads: 0 }
    }

    /// True when a `quit`/`exit` command was executed.
    pub fn execute(&mut self, line: &str) -> (String, bool) {
        let mut parts = line.split_whitespace();
        let cmd = match parts.next() {
            Some(c) => c,
            None => return (String::new(), false),
        };
        let args: Vec<&str> = parts.collect();
        let out = match cmd {
            "help" | "?" => HELP.to_string(),
            "quit" | "exit" => return ("bye".into(), true),
            "data" => self.cmd_data(&args),
            "file" => self.cmd_file(&args),
            "sweep" => self.cmd_sweep(&args),
            "presets" => self.cmd_presets(),
            "show" => render_table(&self.results),
            "csv" => render_csv(&self.results),
            "pareto" => {
                let front: Vec<EstimateResult> =
                    pareto_front(&self.results).into_iter().cloned().collect();
                render_table(&front)
            }
            "best" => self.cmd_best(&args),
            "clear" => {
                self.results.clear();
                "results cleared".into()
            }
            other => format!("unknown command '{other}' — try 'help'"),
        };
        (out, false)
    }

    fn require_data(&self) -> Result<(), String> {
        if self.data.is_empty() {
            Err("no sample loaded — use 'data <corpus> <bytes>' or 'file <path>'".into())
        } else {
            Ok(())
        }
    }

    fn cmd_data(&mut self, args: &[&str]) -> String {
        let (Some(name), Some(size)) = (args.first(), args.get(1)) else {
            return "usage: data <corpus> <bytes> [seed]".into();
        };
        let Some(corpus) = Corpus::parse(name) else {
            return format!("unknown corpus '{name}'");
        };
        let Ok(size) = parse_size(size) else {
            return format!("bad size '{}'", size);
        };
        let seed = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
        self.data = lzfpga_workloads::generate(corpus, seed, size);
        self.data_desc = format!("{} x{} (seed {seed})", corpus.name(), self.data.len());
        format!("loaded {} bytes of {}", self.data.len(), corpus.name())
    }

    fn cmd_file(&mut self, args: &[&str]) -> String {
        let Some(path) = args.first() else {
            return "usage: file <path>".into();
        };
        match std::fs::read(path) {
            Ok(bytes) => {
                self.data_desc = format!("{path} x{}", bytes.len());
                self.data = bytes;
                format!("loaded {} bytes from {path}", self.data.len())
            }
            Err(e) => format!("cannot read {path}: {e}"),
        }
    }

    fn cmd_sweep(&mut self, args: &[&str]) -> String {
        if let Err(e) = self.require_data() {
            return e;
        }
        let mut dicts = vec![1_024u32, 2_048, 4_096, 8_192, 16_384];
        let mut hashes = vec![9u32, 11, 13, 15];
        let mut levels = vec![CompressionLevel::Min];
        for a in args {
            if let Some(v) = a.strip_prefix("dicts=") {
                match v.split(',').map(parse_size_u32).collect::<Result<Vec<_>, _>>() {
                    Ok(d) => dicts = d,
                    Err(e) => return e,
                }
            } else if let Some(v) = a.strip_prefix("hashes=") {
                match v
                    .split(',')
                    .map(|h| h.parse().map_err(|_| format!("bad hash '{h}'")))
                    .collect()
                {
                    Ok(h) => hashes = h,
                    Err(e) => return e,
                }
            } else if let Some(v) = a.strip_prefix("levels=") {
                let mut parsed = Vec::new();
                for l in v.split(',') {
                    match l {
                        "min" => parsed.push(CompressionLevel::Min),
                        "med" | "medium" => parsed.push(CompressionLevel::Medium),
                        "max" => parsed.push(CompressionLevel::Max),
                        other => return format!("bad level '{other}'"),
                    }
                }
                levels = parsed;
            } else {
                return format!("unknown sweep argument '{a}'");
            }
        }
        let mut points = Vec::new();
        for &level in &levels {
            for &d in &dicts {
                for &h in &hashes {
                    let mut cfg = HwConfig::new(d, h);
                    cfg.level = level;
                    points.push(EstimatePoint::new(cfg));
                }
            }
        }
        let n = points.len();
        let results = run_sweep(&self.data, &points, self.threads);
        self.results.extend(results);
        format!("evaluated {n} points over {} ({} rows total)", self.data_desc, self.results.len())
    }

    fn cmd_presets(&mut self) -> String {
        if let Err(e) = self.require_data() {
            return e;
        }
        for p in presets() {
            self.results.push(evaluate(&self.data, &p));
        }
        format!("evaluated {} presets", presets().len())
    }

    fn cmd_best(&mut self, args: &[&str]) -> String {
        let Some(budget) = args.first().and_then(|b| b.parse::<f64>().ok()) else {
            return "usage: best <bram36-budget> [ratio|speed]".into();
        };
        let objective = match args.get(1).copied() {
            None | Some("ratio") => Objective::Ratio,
            Some("speed") => Objective::Speed,
            Some(other) => return format!("unknown objective '{other}'"),
        };
        match best_under_budget(&self.results, budget, objective) {
            Some(best) => format!(
                "{}: ratio {:.3}, {:.1} MB/s, {:.1} RAMB36, {} LUTs",
                best.label, best.ratio, best.mb_per_s, best.bram36_equiv, best.luts
            ),
            None => format!("nothing fits within {budget} RAMB36"),
        }
    }
}

const HELP: &str = "\
commands:
  data <corpus> <bytes> [seed]   generate a sample (e.g. data wiki 4M)
  file <path>                    load a file as the sample
  sweep [dicts=..] [hashes=..] [levels=..]
  presets                        evaluate the named presets
  show | csv | pareto            render accumulated results
  best <bram36> [ratio|speed]    pick the best point under a BRAM budget
  clear | help | quit";

/// Parse a size with optional `k`/`K`/`m`/`M` suffix.
fn parse_size(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1_024),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1_024 * 1_024),
        _ => (s, 1),
    };
    digits.parse::<usize>().map(|v| v * mult).map_err(|_| format!("bad size '{s}'"))
}

fn parse_size_u32(s: &str) -> Result<u32, String> {
    parse_size(s).map(|v| v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(shell: &mut Shell, line: &str) -> String {
        shell.execute(line).0
    }

    #[test]
    fn help_and_unknown() {
        let mut s = Shell::new();
        assert!(exec(&mut s, "help").contains("sweep"));
        assert!(exec(&mut s, "frobnicate").contains("unknown command"));
        assert_eq!(exec(&mut s, ""), "");
    }

    #[test]
    fn quit_signals_exit() {
        let mut s = Shell::new();
        assert!(s.execute("quit").1);
        assert!(!s.execute("show").1);
    }

    #[test]
    fn sweep_requires_data() {
        let mut s = Shell::new();
        assert!(exec(&mut s, "sweep").contains("no sample"));
        assert!(exec(&mut s, "presets").contains("no sample"));
    }

    #[test]
    fn data_sweep_show_best_workflow() {
        let mut s = Shell::new();
        assert!(exec(&mut s, "data wiki 200k 3").contains("loaded 204800 bytes"));
        let out = exec(&mut s, "sweep dicts=1k,4k hashes=9,15");
        assert!(out.contains("evaluated 4 points"), "{out}");
        let table = exec(&mut s, "show");
        assert!(table.contains("4K/15b"), "{table}");
        let best = exec(&mut s, "best 64 ratio");
        assert!(best.contains("ratio"), "{best}");
        let none = exec(&mut s, "best 0.1");
        assert!(none.contains("nothing fits"));
        assert!(exec(&mut s, "clear").contains("cleared"));
        assert!(!exec(&mut s, "show").contains("4K/15b"));
    }

    #[test]
    fn pareto_and_csv_render() {
        let mut s = Shell::new();
        exec(&mut s, "data x2e 100k");
        exec(&mut s, "sweep dicts=1k,16k hashes=9,15");
        let csv = exec(&mut s, "csv");
        assert!(csv.lines().count() >= 5);
        let pareto = exec(&mut s, "pareto");
        assert!(pareto.lines().count() <= exec(&mut s, "show").lines().count());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4k").unwrap(), 4_096);
        assert_eq!(parse_size("2M").unwrap(), 2 * 1_024 * 1_024);
        assert_eq!(parse_size("123").unwrap(), 123);
        assert!(parse_size("4q").is_err());
    }

    #[test]
    fn bad_sweep_arguments_do_not_panic() {
        let mut s = Shell::new();
        exec(&mut s, "data wiki 50k");
        assert!(exec(&mut s, "sweep dicts=banana").contains("bad"));
        assert!(exec(&mut s, "sweep hashes=zz").contains("bad hash"));
        assert!(exec(&mut s, "sweep levels=ultra").contains("bad level"));
        assert!(exec(&mut s, "sweep what=ever").contains("unknown sweep argument"));
    }
}
