//! Rendering of sweep results: fixed-width console tables and CSV.

use crate::sweep::EstimateResult;
use lzfpga_core::stats::STATE_LABELS;

/// Render results as a fixed-width console table (the estimator's default
/// report: block RAM amount, compression ratio and clock cycle usage).
pub fn render_table(results: &[EstimateResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>9} {:>10} {:>7} {:>9} {:>8} {:>8} {:>7}\n",
        "config", "in (KB)", "out (KB)", "ratio", "cyc/byte", "MB/s", "BRAM36", "LUTs"
    ));
    out.push_str(&"-".repeat(79));
    out.push('\n');
    for r in results {
        out.push_str(&format!(
            "{:<14} {:>9.0} {:>10.1} {:>7.3} {:>9.3} {:>8.1} {:>8.1} {:>7}\n",
            r.label,
            r.input_bytes as f64 / 1024.0,
            r.compressed_bytes as f64 / 1024.0,
            r.ratio,
            r.cycles_per_byte,
            r.mb_per_s,
            r.bram36_equiv,
            r.luts,
        ));
    }
    out
}

/// Render results as CSV with a header row (for external plotting — the
/// paper's C# front-end drew charts from exactly these columns).
pub fn render_csv(results: &[EstimateResult]) -> String {
    let mut out = String::from(
        "config,window,hash_bits,level,input_bytes,compressed_bytes,ratio,cycles,cycles_per_byte,mb_per_s,bram36_equiv,luts",
    );
    for label in STATE_LABELS {
        out.push(',');
        out.push_str(&label.to_lowercase().replace(' ', "_"));
    }
    out.push('\n');
    for r in results {
        out.push_str(&format!(
            "{},{},{},{:?},{},{},{:.6},{},{:.6},{:.3},{:.1},{}",
            r.label,
            r.config.window_size,
            r.config.hash_bits,
            r.config.level,
            r.input_bytes,
            r.compressed_bytes,
            r.ratio,
            r.cycles,
            r.cycles_per_byte,
            r.mb_per_s,
            r.bram36_equiv,
            r.luts,
        ));
        for share in r.state_shares {
            out.push_str(&format!(",{share:.6}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{evaluate, EstimatePoint};
    use lzfpga_core::HwConfig;

    fn one_result() -> EstimateResult {
        let data = lzfpga_workloads::patterns::log_lines(1, 50_000);
        evaluate(&data, &EstimatePoint::new(HwConfig::paper_fast()))
    }

    #[test]
    fn table_contains_label_and_headers() {
        let t = render_table(&[one_result()]);
        assert!(t.contains("config"));
        assert!(t.contains("4K/15b/min"));
        assert!(t.contains("MB/s"));
    }

    #[test]
    fn csv_has_header_plus_one_row_per_result() {
        let r = one_result();
        let csv = render_csv(&[r.clone(), r]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("config,window,"));
        assert!(lines[0].contains("finding_match"));
        let fields = lines[1].split(',').count();
        assert_eq!(fields, lines[0].split(',').count());
    }

    #[test]
    fn empty_results_render_header_only() {
        let csv = render_csv(&[]);
        assert_eq!(csv.trim_end().lines().count(), 1);
    }
}

/// Which metric a series pivot reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Compressed size in MB (the Figure 2 axis).
    CompressedMb,
    /// Throughput in MB/s at the design clock (the Figure 3 axis).
    MbPerS,
    /// Compression ratio.
    Ratio,
    /// RAMB36 equivalents.
    Bram36,
}

impl Metric {
    fn of(&self, r: &EstimateResult) -> f64 {
        match self {
            Metric::CompressedMb => r.compressed_bytes as f64 / 1e6,
            Metric::MbPerS => r.mb_per_s,
            Metric::Ratio => r.ratio,
            Metric::Bram36 => r.bram36_equiv,
        }
    }
}

/// Pivot sweep results into a figure-style series table: one row per hash
/// width, one column per dictionary size, cells holding `metric` — the
/// layout of the paper's Figures 2 and 3, for any sweep the tool ran.
/// Missing grid points render as `-`.
pub fn render_series(results: &[EstimateResult], metric: Metric) -> String {
    let mut dicts: Vec<u32> = results.iter().map(|r| r.config.window_size).collect();
    dicts.sort_unstable();
    dicts.dedup();
    let mut hashes: Vec<u32> = results.iter().map(|r| r.config.hash_bits).collect();
    hashes.sort_unstable();
    hashes.dedup();
    let mut out = String::new();
    out.push_str(&format!("{:<10}", "hash\\dict"));
    for d in &dicts {
        out.push_str(&format!(" {:>9}", format!("{}K", d / 1_024)));
    }
    out.push('\n');
    for h in &hashes {
        out.push_str(&format!("{:<10}", format!("{h} bits")));
        for d in &dicts {
            let cell = results
                .iter()
                .find(|r| r.config.window_size == *d && r.config.hash_bits == *h)
                .map(|r| format!("{:>9.3}", metric.of(r)))
                .unwrap_or_else(|| format!("{:>9}", "-"));
            out.push_str(&format!(" {cell}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod series_tests {
    use super::*;
    use crate::sweep::{grid_points, run_sweep};
    use lzfpga_lzss::params::CompressionLevel;
    use lzfpga_workloads::{generate, Corpus};

    #[test]
    fn series_pivot_has_figure_layout() {
        let data = generate(Corpus::Wiki, 3, 150_000);
        let points = grid_points(&[1_024, 4_096], &[9, 15], CompressionLevel::Min);
        let results = run_sweep(&data, &points, 0);
        let table = render_series(&results, Metric::MbPerS);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "{table}");
        assert!(lines[0].contains("1K") && lines[0].contains("4K"));
        assert!(lines[1].starts_with("9 bits"));
        assert!(lines[2].starts_with("15 bits"));
        // Figure-3 shape inside the pivot: more hash bits, more speed.
        let val = |line: &str, col: usize| -> f64 {
            line.split_whitespace().nth(col + 2).unwrap().parse().unwrap()
        };
        assert!(val(lines[2], 0) > val(lines[1], 0));
    }

    #[test]
    fn missing_grid_points_render_as_dash() {
        let data = generate(Corpus::Wiki, 3, 60_000);
        // A deliberately ragged sweep: only the diagonal points.
        let mut points = grid_points(&[1_024], &[9], CompressionLevel::Min);
        points.extend(grid_points(&[4_096], &[15], CompressionLevel::Min));
        let results = run_sweep(&data, &points, 0);
        let table = render_series(&results, Metric::Ratio);
        assert!(table.contains('-'), "{table}");
    }

    #[test]
    fn all_metrics_render() {
        let data = generate(Corpus::X2e, 1, 60_000);
        let points = grid_points(&[2_048], &[12], CompressionLevel::Min);
        let results = run_sweep(&data, &points, 0);
        for m in [Metric::CompressedMb, Metric::MbPerS, Metric::Ratio, Metric::Bram36] {
            let t = render_series(&results, m);
            assert!(t.contains("12 bits"), "{m:?}: {t}");
        }
    }
}
