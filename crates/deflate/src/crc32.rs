//! CRC-32 (IEEE 802.3 polynomial, reflected) — the gzip container's check.

/// Reflected polynomial for CRC-32/ISO-HDLC as used by gzip, zip and PNG.
const POLY: u32 = 0xEDB8_8320;

fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    table: [u32; 256],
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { table: make_table(), state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ self.table[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut s = Crc32::new();
        for chunk in data.chunks(1234) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), crc32(&data));
    }
}
