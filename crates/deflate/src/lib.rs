//! Deflate (RFC 1951), zlib (RFC 1950) and gzip (RFC 1952) in pure Rust.
//!
//! The paper encodes the LZSS command stream "using a fixed Huffman table
//! defined by the Deflate specification" so that the hardware output is
//! consumable by stock ZLib. This crate provides the complete format layer
//! needed to reproduce and *verify* that claim without linking the C zlib:
//!
//! * [`bitio`] — LSB-first bit packing exactly as Deflate requires.
//! * [`huffman`] — canonical Huffman codebooks (encode + decode side).
//! * [`fixed`] — the RFC 1951 §3.2.6 fixed literal/length and distance
//!   tables, plus the length/distance extra-bits mapping.
//! * [`token`] — the literal/match token stream shared with the LZSS stages.
//! * [`sink`] — the [`TokenSink`] consumer interface the match kernels feed,
//!   the software shape of the matcher→Huffman FIFO.
//! * [`encoder`] — token stream → Deflate blocks (stored, fixed-Huffman, and
//!   dynamic-Huffman — the trade-off the paper declined in hardware).
//! * [`mod@inflate`] — a full Deflate decoder (stored/fixed/dynamic) used as the
//!   reference decompressor for round-trip verification.
//! * [`zlib`] / [`gzip`] — stream containers with Adler-32 / CRC-32.
//!
//! Everything is dependency-free plain Rust; streams are byte vectors because
//! the simulator works on in-memory samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adler32;
pub mod bitio;
pub mod crc32;
pub mod encoder;
pub mod fixed;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod sink;
pub mod token;
pub mod vectors;
pub mod zlib;

pub use adler32::adler32;
pub use crc32::{crc32, Crc32};
pub use encoder::{pick_block_kind, BlockKind, DeflateEncoder};
pub use gzip::{gzip_decompress_limited, GzipError};
pub use inflate::{inflate, inflate_limited, InflateError, InflateStream, Limits};
pub use sink::{CountingSink, TokenSink};
pub use token::Token;
pub use zlib::{
    zlib_compress_tokens, zlib_decompress, zlib_decompress_limited, zlib_decompress_prefix,
    ZlibError,
};
