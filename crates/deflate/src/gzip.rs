//! gzip container (RFC 1952): header, Deflate body, CRC-32 + ISIZE trailer.
//!
//! An extension over the paper (which targets the zlib container); provided
//! so compressed logs can be written as `.gz` files any standard tool opens.

use crate::bitio::BitReader;
use crate::crc32::crc32;
use crate::encoder::{BlockKind, DeflateEncoder};
use crate::inflate::{inflate_into_limited, InflateError, Limits};
use crate::token::Token;

/// Errors produced while decoding a gzip stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GzipError {
    /// Missing magic bytes or truncated header/trailer.
    BadHeader,
    /// Compression method byte is not 8 (Deflate).
    BadMethod,
    /// Header flags request a feature this decoder does not implement
    /// (multi-member concatenation aside, all optional fields are handled).
    UnsupportedFlags,
    /// Deflate body failed to decode.
    Inflate(InflateError),
    /// CRC-32 trailer mismatch.
    CrcMismatch,
    /// ISIZE trailer does not match the decoded length (mod 2^32).
    SizeMismatch,
}

impl From<InflateError> for GzipError {
    fn from(e: InflateError) -> Self {
        GzipError::Inflate(e)
    }
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::BadHeader => write!(f, "bad gzip header"),
            GzipError::BadMethod => write!(f, "gzip method is not deflate"),
            GzipError::UnsupportedFlags => write!(f, "unsupported gzip flags"),
            GzipError::Inflate(e) => write!(f, "deflate error: {e}"),
            GzipError::CrcMismatch => write!(f, "gzip crc32 mismatch"),
            GzipError::SizeMismatch => write!(f, "gzip isize mismatch"),
        }
    }
}

impl std::error::Error for GzipError {}

const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Optional gzip member metadata (RFC 1952 header fields).
#[derive(Debug, Clone, Default)]
pub struct GzipMeta {
    /// Original file name (`FNAME`, Latin-1, no NUL).
    pub name: Option<String>,
    /// Comment field (`FCOMMENT`).
    pub comment: Option<String>,
    /// Modification time, Unix seconds (0 = unavailable).
    pub mtime: u32,
    /// OS byte (255 = unknown, 3 = Unix).
    pub os: u8,
    /// Emit the `FHCRC` header checksum.
    pub header_crc: bool,
}

/// Compress a token stream into a complete gzip member. `original` must be
/// the bytes the tokens expand to (feeds CRC-32 and ISIZE).
pub fn gzip_compress_tokens(tokens: &[Token], original: &[u8], kind: BlockKind) -> Vec<u8> {
    gzip_compress_tokens_with(tokens, original, kind, &GzipMeta { os: 255, ..GzipMeta::default() })
}

/// As [`gzip_compress_tokens`], with explicit header metadata.
///
/// # Panics
/// Panics if a name or comment contains a NUL byte (unrepresentable).
pub fn gzip_compress_tokens_with(
    tokens: &[Token],
    original: &[u8],
    kind: BlockKind,
    meta: &GzipMeta,
) -> Vec<u8> {
    let mut flg = 0u8;
    if meta.header_crc {
        flg |= FHCRC;
    }
    if meta.name.is_some() {
        flg |= FNAME;
    }
    if meta.comment.is_some() {
        flg |= FCOMMENT;
    }
    let mut out = vec![0x1F, 0x8B, 8, flg];
    out.extend_from_slice(&meta.mtime.to_le_bytes());
    out.push(match kind {
        BlockKind::DynamicHuffman => 2, // XFL: max compression
        _ => 4,                         // XFL: fastest
    });
    out.push(meta.os);
    for text in [&meta.name, &meta.comment].into_iter().flatten() {
        assert!(!text.as_bytes().contains(&0), "gzip text fields cannot hold NUL");
        out.extend_from_slice(text.as_bytes());
        out.push(0);
    }
    if meta.header_crc {
        let hcrc = crc32(&out) as u16;
        out.extend_from_slice(&hcrc.to_le_bytes());
    }
    let mut enc = DeflateEncoder::new();
    enc.write_block(tokens, kind, true);
    out.extend_from_slice(&enc.finish());
    out.extend_from_slice(&crc32(original).to_le_bytes());
    out.extend_from_slice(&(original.len() as u32).to_le_bytes());
    out
}

/// Decompress a single gzip member, verifying CRC-32 and ISIZE. Trailing
/// bytes after the member are rejected as [`GzipError::BadHeader`] — use
/// [`gzip_decompress_multi`] for concatenated members.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    gzip_decompress_limited(data, &Limits::none())
}

/// [`gzip_decompress`] with [`Limits`] enforced during the Deflate body.
pub fn gzip_decompress_limited(data: &[u8], limits: &Limits) -> Result<Vec<u8>, GzipError> {
    let (out, consumed) = gzip_decompress_member_limited(data, limits)?;
    if consumed != data.len() {
        return Err(GzipError::BadHeader);
    }
    Ok(out)
}

/// Decompress a stream of one or more concatenated gzip members (the
/// standard `cat a.gz b.gz | gunzip` semantics), returning the joined
/// payload.
pub fn gzip_decompress_multi(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    if data.is_empty() {
        return Err(GzipError::BadHeader);
    }
    while pos < data.len() {
        let (member, consumed) = gzip_decompress_member(&data[pos..])?;
        out.extend_from_slice(&member);
        pos += consumed;
    }
    Ok(out)
}

/// Decode one member from the front of `data`; returns the payload and the
/// number of input bytes the member occupied.
pub fn gzip_decompress_member(data: &[u8]) -> Result<(Vec<u8>, usize), GzipError> {
    gzip_decompress_member_limited(data, &Limits::none())
}

/// [`gzip_decompress_member`] with [`Limits`] enforced during the Deflate
/// body.
pub fn gzip_decompress_member_limited(
    data: &[u8],
    limits: &Limits,
) -> Result<(Vec<u8>, usize), GzipError> {
    if data.len() < 18 || data[0] != 0x1F || data[1] != 0x8B {
        return Err(GzipError::BadHeader);
    }
    if data[2] != 8 {
        return Err(GzipError::BadMethod);
    }
    let flg = data[3];
    if flg & 0b1110_0000 != 0 {
        return Err(GzipError::UnsupportedFlags);
    }
    let mut pos = 10usize;
    if flg & FEXTRA != 0 {
        if pos + 2 > data.len() {
            return Err(GzipError::BadHeader);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            if pos >= data.len() {
                return Err(GzipError::BadHeader);
            }
            let end = data[pos..].iter().position(|&b| b == 0).ok_or(GzipError::BadHeader)?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        if pos + 2 > data.len() {
            return Err(GzipError::BadHeader);
        }
        let stored = u16::from_le_bytes([data[pos], data[pos + 1]]);
        if crc32(&data[..pos]) as u16 != stored {
            return Err(GzipError::CrcMismatch);
        }
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(GzipError::BadHeader);
    }
    let body = &data[pos..];
    let mut r = BitReader::new(body);
    let mut out = Vec::new();
    inflate_into_limited(&mut r, &mut out, limits, body.len())?;
    r.align_to_byte();
    let body_used = body.len() - (r.remaining_bits() / 8) as usize;
    let trailer_at = pos + body_used;
    if trailer_at + 8 > data.len() {
        return Err(GzipError::BadHeader);
    }
    let trailer = &data[trailer_at..trailer_at + 8];
    let stored_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let stored_size = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc32(&out) != stored_crc {
        return Err(GzipError::CrcMismatch);
    }
    if out.len() as u32 != stored_size {
        return Err(GzipError::SizeMismatch);
    }
    Ok((out, trailer_at + 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token as T;

    fn literals(data: &[u8]) -> Vec<T> {
        data.iter().copied().map(T::Literal).collect()
    }

    #[test]
    fn round_trip() {
        let data = b"gzip me please, gzip me";
        let mut tokens = literals(&data[..16]);
        tokens.push(T::new_match(16, 7));
        let stream = gzip_compress_tokens(&tokens, data, BlockKind::FixedHuffman);
        assert_eq!(gzip_decompress(&stream).unwrap(), data);
    }

    #[test]
    fn magic_bytes_present() {
        let stream = gzip_compress_tokens(&[], b"", BlockKind::FixedHuffman);
        assert_eq!(&stream[..2], &[0x1F, 0x8B]);
    }

    #[test]
    fn crc_corruption_detected() {
        let data = b"payload";
        let mut stream = gzip_compress_tokens(&literals(data), data, BlockKind::FixedHuffman);
        let n = stream.len();
        stream[n - 5] ^= 1; // CRC byte
        assert_eq!(gzip_decompress(&stream), Err(GzipError::CrcMismatch));
    }

    #[test]
    fn isize_corruption_detected() {
        let data = b"payload";
        let mut stream = gzip_compress_tokens(&literals(data), data, BlockKind::FixedHuffman);
        let n = stream.len();
        stream[n - 1] ^= 1; // ISIZE byte
        assert_eq!(gzip_decompress(&stream), Err(GzipError::SizeMismatch));
    }

    #[test]
    fn header_with_name_field_is_skipped() {
        let data = b"named";
        let mut stream = gzip_compress_tokens(&literals(data), data, BlockKind::FixedHuffman);
        // Inject FNAME: set flag and splice a name after the 10-byte header.
        stream[3] |= FNAME;
        let name = b"file.txt\0";
        let mut with_name = stream[..10].to_vec();
        with_name.extend_from_slice(name);
        with_name.extend_from_slice(&stream[10..]);
        assert_eq!(gzip_decompress(&with_name).unwrap(), data);
    }

    #[test]
    fn non_gzip_rejected() {
        assert_eq!(gzip_decompress(&[0u8; 20]), Err(GzipError::BadHeader));
    }

    #[test]
    fn limited_decode_caps_output() {
        let original = vec![0x55u8; 150_000];
        let mut tokens = vec![T::Literal(0x55)];
        let mut produced = 1usize;
        while produced < original.len() {
            let len = (original.len() - produced).clamp(3, 258) as u32;
            tokens.push(T::new_match(1, len));
            produced += len as usize;
        }
        let stream = gzip_compress_tokens(&tokens, &original, BlockKind::FixedHuffman);
        assert_eq!(
            gzip_decompress_limited(&stream, &Limits::none().with_max_output_bytes(1_000)),
            Err(GzipError::Inflate(InflateError::OutputLimitExceeded))
        );
        assert_eq!(gzip_decompress_limited(&stream, &Limits::none()).unwrap(), original);
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use crate::token::Token as T;

    fn literals(data: &[u8]) -> Vec<T> {
        data.iter().copied().map(T::Literal).collect()
    }

    #[test]
    fn metadata_round_trips_and_decodes() {
        let data = b"named payload with metadata";
        let meta = GzipMeta {
            name: Some("log-2011-09-01.bin".into()),
            comment: Some("X2E capture".into()),
            mtime: 1_316_000_000,
            os: 3,
            header_crc: true,
        };
        let stream =
            gzip_compress_tokens_with(&literals(data), data, BlockKind::FixedHuffman, &meta);
        assert_eq!(gzip_decompress(&stream).unwrap(), data);
        // The name is embedded NUL-terminated after the 10-byte header.
        let name_at = 10;
        let end = stream[name_at..].iter().position(|&b| b == 0).unwrap();
        assert_eq!(&stream[name_at..name_at + end], b"log-2011-09-01.bin");
    }

    #[test]
    fn corrupted_header_crc_is_detected() {
        let data = b"check the header";
        let meta = GzipMeta { header_crc: true, os: 3, ..GzipMeta::default() };
        let mut stream =
            gzip_compress_tokens_with(&literals(data), data, BlockKind::FixedHuffman, &meta);
        stream[4] ^= 0xFF; // MTIME byte is covered by FHCRC
        assert_eq!(gzip_decompress(&stream), Err(GzipError::CrcMismatch));
    }

    #[test]
    fn concatenated_members_decode_as_one_payload() {
        let a = b"first member ";
        let b = b"second member ";
        let c = b"third";
        let mut stream = Vec::new();
        for part in [&a[..], b, c] {
            stream.extend(gzip_compress_tokens(&literals(part), part, BlockKind::FixedHuffman));
        }
        let joined: Vec<u8> = [&a[..], b, c].concat();
        assert_eq!(gzip_decompress_multi(&stream).unwrap(), joined);
        // The single-member API rejects the concatenation.
        assert_eq!(gzip_decompress(&stream), Err(GzipError::BadHeader));
    }

    #[test]
    fn multi_rejects_trailing_garbage() {
        let data = b"payload";
        let mut stream = gzip_compress_tokens(&literals(data), data, BlockKind::FixedHuffman);
        stream.extend_from_slice(b"junk");
        assert!(gzip_decompress_multi(&stream).is_err());
    }

    #[test]
    fn member_consumed_length_is_exact() {
        let data = b"measure me";
        let stream = gzip_compress_tokens(&literals(data), data, BlockKind::FixedHuffman);
        let (out, used) = gzip_decompress_member(&stream).unwrap();
        assert_eq!(out, data);
        assert_eq!(used, stream.len());
    }

    #[test]
    #[should_panic(expected = "cannot hold NUL")]
    fn nul_in_name_rejected() {
        let meta = GzipMeta { name: Some("bad\0name".into()), ..GzipMeta::default() };
        gzip_compress_tokens_with(&[], b"", BlockKind::FixedHuffman, &meta);
    }
}
