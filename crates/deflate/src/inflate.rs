//! A complete Deflate decoder (RFC 1951): stored, fixed and dynamic blocks.
//!
//! This is the repo's reference decompressor — the stand-in for the stock
//! ZLib the paper verified against ("comparing the results to software
//! reference model"). Every compressed stream produced by any stage in this
//! workspace must inflate back to the original bytes.

use crate::bitio::{BitReader, OutOfBits};
use crate::fixed::{
    distance_base, fixed_dist_lengths, fixed_litlen_lengths, length_base, END_OF_BLOCK,
};
use crate::huffman::{DecodeError, Decoder};

/// Errors produced while decoding a Deflate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended before the final block completed.
    UnexpectedEof,
    /// Reserved block type 11 encountered.
    ReservedBlockType,
    /// Stored block LEN/NLEN complement check failed.
    StoredLengthMismatch,
    /// A Huffman code table in a dynamic block is invalid.
    BadCodeTable,
    /// A decoded symbol is outside its alphabet.
    BadSymbol,
    /// A match distance reaches before the start of output.
    DistanceTooFar,
    /// The code-length RLE (symbol 16) repeated with no previous length.
    RepeatWithoutPrevious,
    /// Decoded output exceeded the configured [`Limits`] output cap.
    OutputLimitExceeded,
    /// The stream carried more blocks than the configured [`Limits`] allow.
    BlockLimitExceeded,
}

impl From<OutOfBits> for InflateError {
    fn from(_: OutOfBits) -> Self {
        InflateError::UnexpectedEof
    }
}

impl From<DecodeError> for InflateError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::OutOfInput => InflateError::UnexpectedEof,
            DecodeError::InvalidCode => InflateError::BadSymbol,
        }
    }
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InflateError::UnexpectedEof => "unexpected end of deflate stream",
            InflateError::ReservedBlockType => "reserved block type 11",
            InflateError::StoredLengthMismatch => "stored block LEN/NLEN mismatch",
            InflateError::BadCodeTable => "invalid huffman code table",
            InflateError::BadSymbol => "invalid symbol in stream",
            InflateError::DistanceTooFar => "match distance exceeds output",
            InflateError::RepeatWithoutPrevious => "length repeat with no previous code",
            InflateError::OutputLimitExceeded => "decoded output exceeds configured limit",
            InflateError::BlockLimitExceeded => "block count exceeds configured limit",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for InflateError {}

/// Resource ceilings enforced *during* decode — the defense against
/// decompression bombs and hostile length fields.
///
/// All fields default to `None` (no limit), so `Limits::default()` decodes
/// exactly like the unlimited entry points. The ratio cap is computed
/// against the compressed length with a 4 KiB floor, so tiny-but-legitimate
/// inputs (an empty gzip member is 20 bytes and "expands" infinitely) are
/// not rejected spuriously.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Hard cap on total decoded bytes.
    pub max_output_bytes: Option<u64>,
    /// Cap on `decoded / max(compressed, 4096)`.
    pub max_expansion_ratio: Option<u32>,
    /// Cap on the number of Deflate blocks in the stream.
    pub max_blocks: Option<u64>,
}

impl Limits {
    /// No limits at all (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the hard output-byte cap.
    #[must_use]
    pub fn with_max_output_bytes(mut self, bytes: u64) -> Self {
        self.max_output_bytes = Some(bytes);
        self
    }

    /// Set the expansion-ratio cap (decoded vs. compressed bytes).
    #[must_use]
    pub fn with_max_expansion_ratio(mut self, ratio: u32) -> Self {
        self.max_expansion_ratio = Some(ratio);
        self
    }

    /// Set the block-count cap.
    #[must_use]
    pub fn with_max_blocks(mut self, blocks: u64) -> Self {
        self.max_blocks = Some(blocks);
        self
    }

    /// The effective output cap in bytes for a stream of `compressed_len`
    /// input bytes (`u64::MAX` when unlimited).
    pub fn output_cap(&self, compressed_len: usize) -> u64 {
        let mut cap = self.max_output_bytes.unwrap_or(u64::MAX);
        if let Some(ratio) = self.max_expansion_ratio {
            let floor = (compressed_len as u64).max(4096);
            cap = cap.min(floor.saturating_mul(u64::from(ratio)));
        }
        cap
    }
}

/// Decode a complete Deflate stream into its uncompressed bytes.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    inflate_limited(data, &Limits::none())
}

/// Decode a complete Deflate stream, enforcing [`Limits`] while decoding
/// (a bomb fails fast with [`InflateError::OutputLimitExceeded`] instead of
/// allocating its full expansion).
pub fn inflate_limited(data: &[u8], limits: &Limits) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    inflate_into_limited(&mut r, &mut out, limits, data.len())?;
    Ok(out)
}

/// Decode a Deflate stream from an existing reader, appending to `out`.
/// Returns with the reader positioned just past the final block (mid-byte),
/// which lets container formats read their trailers after re-alignment.
pub fn inflate_into(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    while !inflate_one_block(r, out)? {}
    Ok(())
}

/// [`inflate_into`] with [`Limits`] enforcement; `compressed_len` is the
/// container's compressed payload size, used for the ratio cap.
pub fn inflate_into_limited(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limits: &Limits,
    compressed_len: usize,
) -> Result<(), InflateError> {
    let cap = limits.output_cap(compressed_len);
    let mut blocks: u64 = 0;
    loop {
        blocks += 1;
        if limits.max_blocks.is_some_and(|max| blocks > max) {
            return Err(InflateError::BlockLimitExceeded);
        }
        if inflate_one_block_capped(r, out, cap)? {
            return Ok(());
        }
    }
}

/// Decode exactly one Deflate block, appending to `out`. Returns `true`
/// when the block carried the BFINAL bit.
pub fn inflate_one_block(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<bool, InflateError> {
    inflate_one_block_capped(r, out, u64::MAX)
}

fn inflate_one_block_capped(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    cap: u64,
) -> Result<bool, InflateError> {
    let bfinal = r.read_bit()?;
    let btype = r.read_bits(2)?;
    match btype {
        0b00 => inflate_stored(r, out, cap)?,
        0b01 => {
            let lit = Decoder::from_lengths(&fixed_litlen_lengths())
                .expect("fixed litlen table is valid");
            let dist =
                Decoder::from_lengths(&fixed_dist_lengths()).expect("fixed dist table is valid");
            inflate_compressed(r, out, &lit, &dist, cap)?;
        }
        0b10 => {
            let (lit, dist) = read_dynamic_tables(r)?;
            inflate_compressed(r, out, &lit, &dist, cap)?;
        }
        _ => return Err(InflateError::ReservedBlockType),
    }
    Ok(bfinal == 1)
}

/// Push-based incremental inflate with **block-granular** resumption: feed
/// compressed bytes as they arrive, take decoded bytes as blocks complete.
///
/// The resume point is a block boundary, so output for a block only appears
/// once its final bit has been fed — which is exactly the granularity the
/// streaming session's `Z_SYNC_FLUSH` points create (each flush closes a
/// block and byte-aligns, making everything before it decodable).
#[derive(Debug, Default)]
pub struct InflateStream {
    input: Vec<u8>,
    out: Vec<u8>,
    taken: usize,
    bit_pos: u64,
    finished: bool,
}

impl InflateStream {
    /// New empty stream decoder (raw Deflate, no container framing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed more compressed bytes; decodes as many complete blocks as the
    /// data now allows. Errors are sticky and final.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), InflateError> {
        self.input.extend_from_slice(chunk);
        self.pump()
    }

    fn pump(&mut self) -> Result<(), InflateError> {
        while !self.finished {
            let mut r = BitReader::new(&self.input);
            let mut skip = self.bit_pos;
            while skip > 0 {
                let n = skip.min(32) as u32;
                r.read_bits(n).expect("resume point is inside fed data");
                skip -= u64::from(n);
            }
            let checkpoint = self.out.len();
            match inflate_one_block(&mut r, &mut self.out) {
                Ok(done) => {
                    self.bit_pos = self.input.len() as u64 * 8 - r.remaining_bits();
                    if done {
                        self.finished = true;
                    }
                }
                Err(InflateError::UnexpectedEof) => {
                    // Partial block: roll back and wait for more bytes.
                    self.out.truncate(checkpoint);
                    return Ok(());
                }
                Err(e) => {
                    self.out.truncate(checkpoint);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Take the decoded bytes produced since the last call.
    pub fn take_output(&mut self) -> Vec<u8> {
        let fresh = self.out[self.taken..].to_vec();
        self.taken = self.out.len();
        // Keep the full history: back-references may reach 32 KB behind.
        fresh
    }

    /// True once the final block has been decoded.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Total decoded bytes so far (taken or not).
    pub fn total_out(&self) -> u64 {
        self.out.len() as u64
    }
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>, cap: u64) -> Result<(), InflateError> {
    r.align_to_byte();
    let len = u16::from_le_bytes([r.read_aligned_byte()?, r.read_aligned_byte()?]);
    let nlen = u16::from_le_bytes([r.read_aligned_byte()?, r.read_aligned_byte()?]);
    if len != !nlen {
        return Err(InflateError::StoredLengthMismatch);
    }
    if out.len() as u64 + u64::from(len) > cap {
        return Err(InflateError::OutputLimitExceeded);
    }
    out.reserve(len as usize);
    for _ in 0..len {
        out.push(r.read_aligned_byte()?);
    }
    Ok(())
}

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
const CLCL_ORDER: [usize; 19] = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), InflateError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::BadCodeTable);
    }
    let mut clc_lengths = [0u8; 19];
    for &idx in CLCL_ORDER.iter().take(hclen) {
        clc_lengths[idx] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::from_lengths(&clc_lengths).ok_or(InflateError::BadCodeTable)?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::RepeatWithoutPrevious);
                }
                let prev = lengths[i - 1];
                let n = r.read_bits(2)? as usize + 3;
                if i + n > lengths.len() {
                    return Err(InflateError::BadCodeTable);
                }
                lengths[i..i + n].fill(prev);
                i += n;
            }
            17 => {
                let n = r.read_bits(3)? as usize + 3;
                if i + n > lengths.len() {
                    return Err(InflateError::BadCodeTable);
                }
                i += n;
            }
            18 => {
                let n = r.read_bits(7)? as usize + 11;
                if i + n > lengths.len() {
                    return Err(InflateError::BadCodeTable);
                }
                i += n;
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
    if lengths[END_OF_BLOCK] == 0 {
        // Every block must be terminable.
        return Err(InflateError::BadCodeTable);
    }
    let lit = Decoder::from_lengths(&lengths[..hlit]).ok_or(InflateError::BadCodeTable)?;
    let dist = Decoder::from_lengths(&lengths[hlit..]).ok_or(InflateError::BadCodeTable)?;
    Ok((lit, dist))
}

fn inflate_compressed(
    r: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    lit: &Decoder,
    dist: &Decoder,
    cap: u64,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() as u64 >= cap {
                    return Err(InflateError::OutputLimitExceeded);
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = length_base(sym).ok_or(InflateError::BadSymbol)?;
                let len = base + r.read_bits(extra)? as u32;
                let dsym = dist.decode(r)?;
                let (dbase, dextra) = distance_base(dsym).ok_or(InflateError::BadSymbol)?;
                let d = dbase + r.read_bits(dextra)? as u32;
                let d = d as usize;
                if d > out.len() {
                    return Err(InflateError::DistanceTooFar);
                }
                if out.len() as u64 + u64::from(len) > cap {
                    return Err(InflateError::OutputLimitExceeded);
                }
                // Byte-by-byte copy handles self-overlap (dist < len).
                let start = out.len() - d;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fixed_stream() {
        // `python3 -c "import zlib;print(zlib.compress(b'hello hello hello hello',1)[2:-4].hex())"`
        // yields a zlib stream; this vector is the raw deflate body of
        // compressing "abc" with fixed codes: literals 'a','b','c' + EOB.
        // Hand-built: BFINAL=1,BTYPE=01, 'a'=0x61 -> code 0x31+0x61=0x92 (8b),
        // easier to verify via our own encoder in encoder.rs tests; here we
        // check a canonical empty fixed block: header + EOB(0000000).
        let data = [0b0000_0011u8, 0b0000_0000]; // 1,01, then 7 zero bits
        assert_eq!(inflate(&data).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reserved_block_type_rejected() {
        let data = [0b0000_0111u8];
        assert_eq!(inflate(&data), Err(InflateError::ReservedBlockType));
    }

    #[test]
    fn truncated_stream_rejected() {
        let data = [0b0000_0011u8]; // fixed block, EOB cut off
        assert_eq!(inflate(&data), Err(InflateError::UnexpectedEof));
    }

    #[test]
    fn stored_nlen_mismatch_rejected() {
        // BFINAL=1 BTYPE=00, LEN=1, NLEN=0 (should be !1).
        let data = [0b0000_0001, 0x01, 0x00, 0x00, 0x00, 0xAA];
        assert_eq!(inflate(&data), Err(InflateError::StoredLengthMismatch));
    }

    #[test]
    fn distance_too_far_rejected() {
        // Fixed block: match(len 3, dist 1) as the very first symbol.
        use crate::bitio::BitWriter;
        use crate::huffman::Codebook;
        let lit = Codebook::from_lengths(&fixed_litlen_lengths());
        let dist = Codebook::from_lengths(&fixed_dist_lengths());
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        lit.encode(&mut w, 257); // len 3, no extra
        dist.encode(&mut w, 0); // dist 1, no extra
        lit.encode(&mut w, 256);
        assert_eq!(inflate(&w.finish()), Err(InflateError::DistanceTooFar));
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(InflateError::DistanceTooFar.to_string(), "match distance exceeds output");
        assert_eq!(
            InflateError::OutputLimitExceeded.to_string(),
            "decoded output exceeds configured limit"
        );
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use crate::encoder::{BlockKind, DeflateEncoder};
    use crate::token::Token;

    /// A small stream that expands to `n` identical bytes via one literal
    /// plus maximal matches — a miniature decompression bomb.
    fn bomb(n: usize) -> Vec<u8> {
        let mut tokens = vec![Token::Literal(b'x')];
        let mut produced = 1;
        while produced < n {
            let len = (n - produced).clamp(3, 258) as u32;
            tokens.push(Token::new_match(1, len));
            produced += len as usize;
        }
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::FixedHuffman, true);
        enc.finish()
    }

    #[test]
    fn unlimited_default_matches_plain_inflate() {
        let stream = bomb(100_000);
        assert_eq!(inflate_limited(&stream, &Limits::default()), inflate(&stream));
    }

    #[test]
    fn output_byte_cap_stops_a_bomb_early() {
        let stream = bomb(1_000_000);
        let limits = Limits::none().with_max_output_bytes(10_000);
        assert_eq!(inflate_limited(&stream, &limits), Err(InflateError::OutputLimitExceeded));
    }

    #[test]
    fn expansion_ratio_cap_stops_a_bomb() {
        let stream = bomb(10_000_000);
        assert!(stream.len() < 100_000, "bomb must be small on the wire");
        let limits = Limits::none().with_max_expansion_ratio(4);
        assert_eq!(inflate_limited(&stream, &limits), Err(InflateError::OutputLimitExceeded));
    }

    #[test]
    fn ratio_floor_spares_tiny_legitimate_streams() {
        // An 11-byte stream decoding to ~300 bytes has ratio ≈ 27, but the
        // 4096-byte floor keeps it under `4096 * 4`.
        let stream = bomb(300);
        let limits = Limits::none().with_max_expansion_ratio(4);
        assert_eq!(inflate_limited(&stream, &limits).unwrap().len(), 300);
    }

    #[test]
    fn block_count_cap_enforced() {
        let mut enc = DeflateEncoder::new();
        for i in 0..5 {
            let tokens = [Token::Literal(b'a' + i as u8)];
            enc.write_block(&tokens, BlockKind::FixedHuffman, i == 4);
        }
        let stream = enc.finish();
        assert_eq!(
            inflate_limited(&stream, &Limits::none().with_max_blocks(4)),
            Err(InflateError::BlockLimitExceeded)
        );
        assert_eq!(inflate_limited(&stream, &Limits::none().with_max_blocks(5)).unwrap(), b"abcde");
    }

    #[test]
    fn stored_blocks_respect_the_cap() {
        // BFINAL=1 BTYPE=00, LEN=100, NLEN=!100, then 100 payload bytes.
        let mut data = vec![0b0000_0001, 100, 0, !100u8, 0xFF];
        data.extend(std::iter::repeat_n(0xAB, 100));
        assert_eq!(
            inflate_limited(&data, &Limits::none().with_max_output_bytes(99)),
            Err(InflateError::OutputLimitExceeded)
        );
        assert_eq!(
            inflate_limited(&data, &Limits::none().with_max_output_bytes(100)).unwrap().len(),
            100
        );
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::encoder::{BlockKind, DeflateEncoder};
    use crate::token::Token;

    fn blocks(parts: &[&[u8]]) -> (Vec<u8>, Vec<u8>) {
        let mut enc = DeflateEncoder::new();
        let mut joined = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let tokens: Vec<Token> = part.iter().copied().map(Token::Literal).collect();
            enc.write_block(&tokens, BlockKind::FixedHuffman, i + 1 == parts.len());
            joined.extend_from_slice(part);
        }
        (enc.finish(), joined)
    }

    #[test]
    fn byte_at_a_time_feeding_decodes_everything() {
        let (stream, expected) = blocks(&[b"first block ", b"second", b" third and last"]);
        let mut s = InflateStream::new();
        let mut got = Vec::new();
        for &b in &stream {
            s.feed(&[b]).unwrap();
            got.extend(s.take_output());
        }
        assert!(s.is_finished());
        assert_eq!(got, expected);
    }

    #[test]
    fn output_appears_at_block_boundaries() {
        let (stream, expected) = blocks(&[b"alpha beta gamma ", b"delta"]);
        let mut s = InflateStream::new();
        // Feed everything except the last byte: the final block is still
        // open, so only the first block's bytes are out.
        s.feed(&stream[..stream.len() - 1]).unwrap();
        let early = s.take_output();
        assert!(early.starts_with(b"alpha"));
        assert!(early.len() < expected.len());
        assert!(!s.is_finished());
        s.feed(&stream[stream.len() - 1..]).unwrap();
        let mut got = early;
        got.extend(s.take_output());
        assert_eq!(got, expected);
        assert!(s.is_finished());
        assert_eq!(s.total_out(), expected.len() as u64);
    }

    #[test]
    fn cross_block_back_references_resolve() {
        let mut enc = DeflateEncoder::new();
        let lits: Vec<Token> = b"abcdefgh".iter().copied().map(Token::Literal).collect();
        enc.write_block(&lits, BlockKind::FixedHuffman, false);
        enc.write_block(&[Token::new_match(8, 8)], BlockKind::FixedHuffman, true);
        let stream = enc.finish();
        let mut s = InflateStream::new();
        for chunk in stream.chunks(3) {
            s.feed(chunk).unwrap();
        }
        let mut got = Vec::new();
        got.extend(s.take_output());
        assert_eq!(got, b"abcdefghabcdefgh");
    }

    #[test]
    fn corrupt_stream_errors_and_rolls_back() {
        let (mut stream, _) = blocks(&[b"some payload to protect"]);
        stream[0] = 0b110; // BFINAL=0 + reserved BTYPE=11
        let mut s = InflateStream::new();
        assert!(matches!(s.feed(&stream), Err(InflateError::ReservedBlockType)));
        assert!(s.take_output().is_empty(), "no partial garbage");
    }

    #[test]
    fn session_flush_points_release_output_incrementally() {
        // (The cross-crate session pairing lives in tests/; here a plain
        // sync-flush sequence stands in.)
        let mut enc = DeflateEncoder::new();
        let t1: Vec<Token> = b"chunk one ".iter().copied().map(Token::Literal).collect();
        enc.write_block(&t1, BlockKind::FixedHuffman, false);
        enc.sync_flush();
        let aligned_len = enc.as_bytes().len();
        let t2: Vec<Token> = b"chunk two".iter().copied().map(Token::Literal).collect();
        enc.write_block(&t2, BlockKind::FixedHuffman, true);
        let stream = enc.finish();
        let mut s = InflateStream::new();
        s.feed(&stream[..aligned_len]).unwrap();
        assert_eq!(s.take_output(), b"chunk one ", "flush point releases its block");
        s.feed(&stream[aligned_len..]).unwrap();
        assert_eq!(s.take_output(), b"chunk two");
    }
}
