//! zlib container (RFC 1950): header, Deflate body, Adler-32 trailer.
//!
//! This is the exact wire format the paper targets — "to make the compressed
//! stream compatible with the ZLib library we encode the LZSS algorithm
//! output using a fixed Huffman table defined by the Deflate specification".

use crate::adler32::adler32;
use crate::bitio::BitReader;
use crate::encoder::{BlockKind, DeflateEncoder};
use crate::inflate::{inflate_into, inflate_into_limited, InflateError, Limits};
use crate::token::Token;

/// Errors produced while decoding a zlib stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZlibError {
    /// Stream shorter than the minimal header + trailer.
    TooShort,
    /// Compression method is not 8 (Deflate) or window too large.
    BadHeader,
    /// Header check bits do not satisfy the mod-31 rule.
    HeaderChecksum,
    /// FDICT preset dictionaries are not supported (the paper's stream never
    /// uses them).
    PresetDictUnsupported,
    /// Deflate body failed to decode.
    Inflate(InflateError),
    /// Adler-32 trailer mismatch.
    ChecksumMismatch {
        /// Checksum stored in the stream trailer.
        expected: u32,
        /// Checksum computed over the decoded output.
        actual: u32,
    },
}

impl From<InflateError> for ZlibError {
    fn from(e: InflateError) -> Self {
        ZlibError::Inflate(e)
    }
}

impl std::fmt::Display for ZlibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZlibError::TooShort => write!(f, "zlib stream too short"),
            ZlibError::BadHeader => write!(f, "bad zlib header"),
            ZlibError::HeaderChecksum => write!(f, "zlib header check failed"),
            ZlibError::PresetDictUnsupported => write!(f, "preset dictionary unsupported"),
            ZlibError::Inflate(e) => write!(f, "deflate error: {e}"),
            ZlibError::ChecksumMismatch { expected, actual } => {
                write!(f, "adler32 mismatch: stored {expected:08x}, computed {actual:08x}")
            }
        }
    }
}

impl std::error::Error for ZlibError {}

/// Build the 2-byte zlib header for a given LZ77 window size (`1 << (8+cinfo)`
/// bytes; Deflate caps it at 32 KiB). `flevel` is purely informational.
pub fn zlib_header(window_size: u32, flevel: u8) -> [u8; 2] {
    zlib_header_with(window_size, flevel, false)
}

/// As [`zlib_header`], optionally setting the `FDICT` preset-dictionary
/// flag (the 4-byte DICTID follows the header in the stream).
pub fn zlib_header_with(window_size: u32, flevel: u8, fdict: bool) -> [u8; 2] {
    assert!(window_size.is_power_of_two(), "window must be a power of two");
    assert!((256..=32_768).contains(&window_size), "window {window_size} out of zlib range");
    let cinfo = window_size.trailing_zeros() - 8;
    let cmf = ((cinfo as u8) << 4) | 8; // CM = 8 (deflate)
    let mut flg = (flevel & 0b11) << 6;
    if fdict {
        flg |= 0x20;
    }
    // FCHECK makes (CMF*256 + FLG) a multiple of 31.
    let rem = ((u16::from(cmf) << 8) | u16::from(flg)) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    [cmf, flg]
}

/// Compress a token stream produced against a preset dictionary into a
/// complete zlib stream with the `FDICT` flag and DICTID (RFC 1950 §2.2).
/// `original` is the payload only (the Adler-32 trailer covers it alone).
pub fn zlib_compress_tokens_with_dict(
    tokens: &[Token],
    original: &[u8],
    dict: &[u8],
    kind: BlockKind,
    window_size: u32,
) -> Vec<u8> {
    let flevel = match kind {
        BlockKind::Stored => 0,
        BlockKind::FixedHuffman => 1,
        BlockKind::DynamicHuffman => 2,
    };
    let mut out = zlib_header_with(window_size, flevel, true).to_vec();
    out.extend_from_slice(&adler32(dict).to_be_bytes()); // DICTID
    let mut enc = DeflateEncoder::new();
    enc.write_block(tokens, kind, true);
    out.extend_from_slice(&enc.finish());
    out.extend_from_slice(&adler32(original).to_be_bytes());
    out
}

/// Decompress a zlib stream that requires the given preset dictionary
/// (verifies the `FDICT` flag, the DICTID and the payload Adler-32).
pub fn zlib_decompress_with_dict(data: &[u8], dict: &[u8]) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 10 {
        return Err(ZlibError::TooShort);
    }
    let (cmf, flg) = (data[0], data[1]);
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err(ZlibError::HeaderChecksum);
    }
    if flg & 0x20 == 0 {
        // A dictionary was supplied for a stream that does not want one.
        return Err(ZlibError::BadHeader);
    }
    let dictid = u32::from_be_bytes([data[2], data[3], data[4], data[5]]);
    if dictid != adler32(dict) {
        return Err(ZlibError::ChecksumMismatch { expected: dictid, actual: adler32(dict) });
    }
    let mut r = BitReader::new(&data[6..]);
    let mut out = dict.to_vec();
    inflate_into(&mut r, &mut out)?;
    r.align_to_byte();
    let mut trailer = [0u8; 4];
    for b in &mut trailer {
        *b = r.read_aligned_byte().map_err(|_| ZlibError::TooShort)?;
    }
    out.drain(..dict.len());
    let expected = u32::from_be_bytes(trailer);
    let actual = adler32(&out);
    if expected != actual {
        return Err(ZlibError::ChecksumMismatch { expected, actual });
    }
    Ok(out)
}

/// Compress a token stream (already produced by some LZSS stage) into a
/// complete zlib stream. `original` must be the exact bytes the tokens expand
/// to — it feeds the Adler-32 trailer, mirroring how the hardware computes
/// the checksum on the uncompressed input as it streams through.
pub fn zlib_compress_tokens(
    tokens: &[Token],
    original: &[u8],
    kind: BlockKind,
    window_size: u32,
) -> Vec<u8> {
    let flevel = match kind {
        BlockKind::Stored => 0,
        BlockKind::FixedHuffman => 1, // the paper's "fastest" reference point
        BlockKind::DynamicHuffman => 2,
    };
    let mut out = zlib_header(window_size, flevel).to_vec();
    let mut enc = DeflateEncoder::new();
    enc.write_block(tokens, kind, true);
    out.extend_from_slice(&enc.finish());
    out.extend_from_slice(&adler32(original).to_be_bytes());
    out
}

/// Decompress a complete zlib stream, verifying header and Adler-32 trailer.
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, ZlibError> {
    zlib_decompress_limited(data, &Limits::none())
}

/// Decode **one** zlib stream from the front of `data`, returning the
/// payload and the number of bytes the stream occupied.
///
/// Unlike [`zlib_decompress`], trailing bytes after the Adler-32 trailer are
/// not an error — they simply are not consumed. A zlib stream is
/// self-delimiting (the final-block bit ends the Deflate body), which is
/// what lets a framed-container salvage pass recover a payload whose length
/// field was lost with the damaged frame header.
///
/// # Errors
/// The same failures as [`zlib_decompress_limited`]; `limits` is enforced
/// while the body inflates.
pub fn zlib_decompress_prefix(data: &[u8], limits: &Limits) -> Result<(Vec<u8>, usize), ZlibError> {
    if data.len() < 6 {
        return Err(ZlibError::TooShort);
    }
    let (cmf, flg) = (data[0], data[1]);
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err(ZlibError::HeaderChecksum);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::PresetDictUnsupported);
    }
    let body = &data[2..];
    let mut r = BitReader::new(body);
    let mut out = Vec::new();
    inflate_into_limited(&mut r, &mut out, limits, data.len())?;
    r.align_to_byte();
    let mut trailer = [0u8; 4];
    for b in &mut trailer {
        *b = r.read_aligned_byte().map_err(|_| ZlibError::TooShort)?;
    }
    let expected = u32::from_be_bytes(trailer);
    let actual = adler32(&out);
    if expected != actual {
        return Err(ZlibError::ChecksumMismatch { expected, actual });
    }
    // After align_to_byte the remaining bit count is a whole number of
    // bytes, so the consumed length is exact.
    let consumed = 2 + (body.len() - (r.remaining_bits() / 8) as usize);
    Ok((out, consumed))
}

/// [`zlib_decompress`] with [`Limits`] enforced during the Deflate body —
/// a decompression bomb fails with `Inflate(OutputLimitExceeded)` before
/// its expansion is allocated.
pub fn zlib_decompress_limited(data: &[u8], limits: &Limits) -> Result<Vec<u8>, ZlibError> {
    if data.len() < 6 {
        return Err(ZlibError::TooShort);
    }
    let (cmf, flg) = (data[0], data[1]);
    if cmf & 0x0F != 8 || (cmf >> 4) > 7 {
        return Err(ZlibError::BadHeader);
    }
    if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
        return Err(ZlibError::HeaderChecksum);
    }
    if flg & 0x20 != 0 {
        return Err(ZlibError::PresetDictUnsupported);
    }
    let mut r = BitReader::new(&data[2..]);
    let mut out = Vec::new();
    inflate_into_limited(&mut r, &mut out, limits, data.len())?;
    r.align_to_byte();
    let mut trailer = [0u8; 4];
    for b in &mut trailer {
        *b = r.read_aligned_byte().map_err(|_| ZlibError::TooShort)?;
    }
    let expected = u32::from_be_bytes(trailer);
    let actual = adler32(&out);
    if expected != actual {
        return Err(ZlibError::ChecksumMismatch { expected, actual });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token as T;

    fn literals(data: &[u8]) -> Vec<T> {
        data.iter().copied().map(T::Literal).collect()
    }

    #[test]
    fn header_check_bits_are_valid() {
        for window in [256u32, 1 << 10, 1 << 12, 1 << 15] {
            for flevel in 0..4 {
                let [cmf, flg] = zlib_header(window, flevel);
                assert_eq!((u16::from(cmf) * 256 + u16::from(flg)) % 31, 0);
                assert_eq!(cmf & 0x0F, 8);
            }
        }
    }

    #[test]
    fn default_32k_header_is_the_famous_78xx() {
        let [cmf, _] = zlib_header(32_768, 1);
        assert_eq!(cmf, 0x78);
    }

    #[test]
    fn round_trip_fixed() {
        let data = b"to be or not to be, that is the question";
        let mut tokens = literals(&data[..20]);
        // "to be" appears again at offset 13: match(dist 13, len 6).
        tokens.extend(literals(&data[20..]));
        let stream = zlib_compress_tokens(&tokens, data, BlockKind::FixedHuffman, 4_096);
        assert_eq!(zlib_decompress(&stream).unwrap(), data);
    }

    #[test]
    fn round_trip_with_matches_and_4k_window() {
        let original = b"snowy snow";
        let mut tokens = literals(b"snowy ");
        tokens.push(T::new_match(6, 4));
        let stream = zlib_compress_tokens(&tokens, original, BlockKind::FixedHuffman, 4_096);
        assert_eq!(zlib_decompress(&stream).unwrap(), original);
    }

    #[test]
    fn corrupt_trailer_detected() {
        let data = b"checksum me";
        let mut stream =
            zlib_compress_tokens(&literals(data), data, BlockKind::FixedHuffman, 32_768);
        let n = stream.len();
        stream[n - 1] ^= 0xFF;
        assert!(matches!(zlib_decompress(&stream), Err(ZlibError::ChecksumMismatch { .. })));
    }

    #[test]
    fn corrupt_header_detected() {
        let data = b"x";
        let mut stream =
            zlib_compress_tokens(&literals(data), data, BlockKind::FixedHuffman, 32_768);
        stream[0] = 0x79; // CM becomes 9
        assert_eq!(zlib_decompress(&stream), Err(ZlibError::BadHeader));
        stream[0] = 0x78;
        stream[1] ^= 0x04; // break FCHECK
        assert_eq!(zlib_decompress(&stream), Err(ZlibError::HeaderChecksum));
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(zlib_decompress(&[0x78, 0x9C]), Err(ZlibError::TooShort));
    }

    #[test]
    fn limited_decode_caps_output() {
        let original = vec![b'z'; 200_000];
        let mut tokens = vec![T::Literal(b'z')];
        let mut produced = 1usize;
        while produced < original.len() {
            let len = (original.len() - produced).clamp(3, 258) as u32;
            tokens.push(T::new_match(1, len));
            produced += len as usize;
        }
        let stream = zlib_compress_tokens(&tokens, &original, BlockKind::FixedHuffman, 32_768);
        assert_eq!(
            zlib_decompress_limited(&stream, &Limits::none().with_max_output_bytes(100_000)),
            Err(ZlibError::Inflate(InflateError::OutputLimitExceeded))
        );
        assert_eq!(
            zlib_decompress_limited(&stream, &Limits::none().with_max_output_bytes(200_000))
                .unwrap(),
            original
        );
    }

    #[test]
    fn prefix_decode_reports_exact_consumption() {
        let data = b"prefix me prefix me prefix me";
        let stream = zlib_compress_tokens(&literals(data), data, BlockKind::FixedHuffman, 4_096);
        let n = stream.len();
        // Trailing garbage after the stream is ignored, not consumed.
        let mut padded = stream.clone();
        padded.extend_from_slice(b"GARBAGE GARBAGE");
        let (out, consumed) = zlib_decompress_prefix(&padded, &Limits::none()).unwrap();
        assert_eq!(out, data);
        assert_eq!(consumed, n);
        // An exact stream consumes itself entirely.
        let (out, consumed) = zlib_decompress_prefix(&stream, &Limits::none()).unwrap();
        assert_eq!(out, data);
        assert_eq!(consumed, n);
        // A truncated stream is a typed error.
        assert!(zlib_decompress_prefix(&stream[..n - 3], &Limits::none()).is_err());
    }

    #[test]
    fn preset_dict_rejected() {
        // Header with FDICT set and valid check bits.
        let cmf = 0x78u8;
        let mut flg = 0x20u8;
        let rem = (u16::from(cmf) * 256 + u16::from(flg)) % 31;
        flg += (31 - rem) as u8 % 31;
        let stream = [cmf, flg, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(zlib_decompress(&stream), Err(ZlibError::PresetDictUnsupported));
    }
}
