//! LSB-first bit-level I/O as used by Deflate (RFC 1951 §3.1.1).
//!
//! Deflate packs bits starting from the least-significant bit of each byte.
//! Non-Huffman fields (extra bits, block headers) are written with their own
//! least-significant bit first; Huffman codes are written starting from the
//! code's most-significant bit, which callers achieve by bit-reversing codes
//! before calling [`BitWriter::write_bits`] (see [`crate::huffman`]).

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    out: Vec<u8>,
    bitbuf: u64,
    bitcount: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value` (LSB written first). `n` may be 0
    /// (no-op) and at most 57 so the accumulator never overflows.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57, "write_bits supports at most 57 bits at once");
        debug_assert!(n == 64 || value < (1u64 << n), "value {value} wider than {n} bits");
        self.bitbuf |= value << self.bitcount;
        self.bitcount += n;
        if self.bitcount >= 8 {
            // Flush every complete byte in one memcpy-sized append; bitcount
            // can reach 64 (7 buffered + 57 new), where the shift below would
            // be out of range, hence the checked variant.
            let flushed = (self.bitcount / 8) as usize;
            self.out.extend_from_slice(&self.bitbuf.to_le_bytes()[..flushed]);
            self.bitbuf = self.bitbuf.checked_shr(flushed as u32 * 8).unwrap_or(0);
            self.bitcount -= flushed as u32 * 8;
        }
    }

    /// Pad with zero bits to the next byte boundary (used before stored
    /// blocks and at stream end).
    pub fn align_to_byte(&mut self) {
        if self.bitcount > 0 {
            self.out.push((self.bitbuf & 0xFF) as u8);
            self.bitbuf = 0;
            self.bitcount = 0;
        }
    }

    /// Append a whole byte; the writer must be byte-aligned.
    ///
    /// # Panics
    /// Panics if not aligned — stored-block payloads must follow the
    /// alignment padding mandated by the spec.
    pub fn write_aligned_byte(&mut self, byte: u8) {
        assert_eq!(self.bitcount, 0, "writer not byte-aligned");
        self.out.push(byte);
    }

    /// Bits written so far (including buffered, not-yet-flushed bits).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + u64::from(self.bitcount)
    }

    /// Finish the stream: align and return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }

    /// Borrow the completed bytes without consuming (excludes buffered bits).
    pub fn as_bytes(&self) -> &[u8] {
        &self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index.
    pos: usize,
    bitbuf: u64,
    bitcount: u32,
}

/// Error returned when a read runs past the end of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl<'a> BitReader<'a> {
    /// Reader over `data` starting at bit 0 of byte 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, bitbuf: 0, bitcount: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bitcount <= 56 && self.pos < self.data.len() {
            self.bitbuf |= u64::from(self.data[self.pos]) << self.bitcount;
            self.pos += 1;
            self.bitcount += 8;
        }
    }

    /// Read `n` bits (0..=57), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, OutOfBits> {
        debug_assert!(n <= 57);
        if n == 0 {
            return Ok(0);
        }
        if self.bitcount < n {
            self.refill();
            if self.bitcount < n {
                return Err(OutOfBits);
            }
        }
        let v = self.bitbuf & ((1u64 << n) - 1);
        self.bitbuf >>= n;
        self.bitcount -= n;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, OutOfBits> {
        Ok(self.read_bits(1)? as u32)
    }

    /// Discard buffered bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.bitcount % 8;
        self.bitbuf >>= drop;
        self.bitcount -= drop;
    }

    /// Read a whole byte; reader must be byte-aligned (after
    /// [`Self::align_to_byte`]).
    pub fn read_aligned_byte(&mut self) -> Result<u8, OutOfBits> {
        debug_assert_eq!(self.bitcount % 8, 0, "reader not byte-aligned");
        Ok(self.read_bits(8)? as u8)
    }

    /// Number of the *unread* whole bytes remaining, counting buffered bits.
    pub fn remaining_bits(&self) -> u64 {
        (self.data.len() - self.pos) as u64 * 8 + u64::from(self.bitcount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [1u64, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bits(1).unwrap(), b);
        }
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = BitWriter::new();
        // Deflate example: writing value 0b1 as 1 bit then 0b01 as 2 bits
        // gives byte 0b...011 -> 0x03.
        w.write_bits(0b1, 1);
        w.write_bits(0b01, 2);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0011]);
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0x1AB, 9);
        w.write_bits(0x3F, 6);
        w.write_bits(0x12345, 17);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(9).unwrap(), 0x1AB);
        assert_eq!(r.read_bits(6).unwrap(), 0x3F);
        assert_eq!(r.read_bits(17).unwrap(), 0x12345);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_to_byte();
        w.write_aligned_byte(0xAA);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xAA]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_aligned_byte().unwrap(), 0xAA);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.finish(), vec![0b11]);
    }

    #[test]
    fn out_of_bits_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(OutOfBits));
    }

    #[test]
    fn bit_len_tracks_buffered_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b101, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0x7F, 7);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn remaining_bits_counts_down() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 32);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 27);
    }
}
