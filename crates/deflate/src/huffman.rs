//! Canonical Huffman codebooks: construction, encoding and decoding.
//!
//! Deflate transmits only *code lengths*; both sides derive the actual codes
//! with the canonical algorithm of RFC 1951 §3.2.2. This module provides:
//!
//! * [`canonical_codes`] — lengths → codes (the RFC algorithm verbatim),
//! * [`Codebook`] — an encoder-side table with pre-reversed codes (Deflate
//!   emits Huffman codes MSB-first into an LSB-first bit stream),
//! * [`Decoder`] — a decoder built from the same lengths, using the
//!   counts/offsets canonical decode (the approach of Mark Adler's `puff`),
//! * [`build_lengths`] — frequency histogram → length-limited code lengths
//!   (for the dynamic-Huffman encoder).

use crate::bitio::{BitReader, BitWriter, OutOfBits};

/// Maximum code length allowed anywhere in Deflate.
pub const MAX_BITS: usize = 15;

/// Compute canonical codes from code lengths (RFC 1951 §3.2.2). Symbols with
/// length 0 get code 0 and must never be emitted.
///
/// # Panics
/// Panics if the lengths oversubscribe the code space (an invalid tree).
pub fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let mut bl_count = [0u32; MAX_BITS + 1];
    for &len in lengths {
        assert!((len as usize) <= MAX_BITS, "code length {len} exceeds 15");
        bl_count[len as usize] += 1;
    }
    bl_count[0] = 0;
    let mut next_code = [0u16; MAX_BITS + 1];
    let mut code: u32 = 0;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1]) << 1;
        assert!(code + bl_count[bits] <= (1 << bits), "oversubscribed code space at length {bits}");
        next_code[bits] = code as u16;
    }
    lengths
        .iter()
        .map(|&len| {
            if len == 0 {
                0
            } else {
                let c = next_code[len as usize];
                next_code[len as usize] += 1;
                c
            }
        })
        .collect()
}

/// Reverse the low `n` bits of `code` — Deflate writes Huffman codes starting
/// from their most-significant bit, while the bit stream is LSB-first.
#[inline]
pub fn reverse_bits(code: u16, n: u8) -> u16 {
    let mut v = code;
    v = ((v & 0x5555) << 1) | ((v >> 1) & 0x5555);
    v = ((v & 0x3333) << 2) | ((v >> 2) & 0x3333);
    v = ((v & 0x0F0F) << 4) | ((v >> 4) & 0x0F0F);
    v = v.rotate_left(8);
    v >> (16 - u16::from(n))
}

/// Encoder-side codebook: for each symbol, the bit-reversed code and length,
/// ready for [`BitWriter::write_bits`].
#[derive(Debug, Clone)]
pub struct Codebook {
    codes: Vec<u16>,
    lengths: Vec<u8>,
}

impl Codebook {
    /// Build from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let canonical = canonical_codes(lengths);
        let codes = canonical
            .iter()
            .zip(lengths)
            .map(|(&c, &l)| if l == 0 { 0 } else { reverse_bits(c, l) })
            .collect();
        Self { codes, lengths: lengths.to_vec() }
    }

    /// Emit `symbol`'s code.
    ///
    /// # Panics
    /// Panics if the symbol has no code (length 0) — encoding such a symbol
    /// is a bug in the caller's frequency accounting.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(u64::from(self.codes[symbol]), u32::from(len));
    }

    /// Code length of `symbol` in bits (0 = absent).
    #[inline]
    pub fn length(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }

    /// The bit-reversed code and its length for `symbol`, ready to feed an
    /// LSB-first packer (what a hardware code ROM would output).
    ///
    /// # Panics
    /// Panics if the symbol has no code.
    #[inline]
    pub fn code(&self, symbol: usize) -> (u16, u8) {
        let len = self.lengths[symbol];
        assert!(len > 0, "symbol {symbol} has no code");
        (self.codes[symbol], len)
    }

    /// Number of symbols in the book.
    pub fn num_symbols(&self) -> usize {
        self.lengths.len()
    }
}

/// Decoder-side canonical Huffman table.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// count[len] = number of codes of that length.
    count: [u16; MAX_BITS + 1],
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
}

/// Errors from canonical decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit stream ended mid-code.
    OutOfInput,
    /// The accumulated bits match no code of any length (invalid stream or
    /// incomplete code used where a complete one is required).
    InvalidCode,
}

impl From<OutOfBits> for DecodeError {
    fn from(_: OutOfBits) -> Self {
        DecodeError::OutOfInput
    }
}

impl Decoder {
    /// Build a decoder from code lengths. Returns `None` if the lengths
    /// oversubscribe the code space. Incomplete codes are permitted (Deflate
    /// allows a single-symbol distance code, for instance); decoding a gap
    /// yields [`DecodeError::InvalidCode`].
    pub fn from_lengths(lengths: &[u8]) -> Option<Self> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            if len as usize > MAX_BITS {
                return None;
            }
            count[len as usize] += 1;
        }
        count[0] = 0;
        // Check for oversubscription.
        let mut left: i32 = 1;
        for &c in &count[1..=MAX_BITS] {
            left <<= 1;
            left -= i32::from(c);
            if left < 0 {
                return None;
            }
        }
        // offsets[len] = index of first symbol of that length in `symbols`.
        let mut offs = [0usize; MAX_BITS + 2];
        for len in 1..=MAX_BITS {
            offs[len + 1] = offs[len] + count[len] as usize;
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l != 0).count()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offs[len as usize]] = sym as u16;
                offs[len as usize] += 1;
            }
        }
        Some(Self { count, symbols })
    }

    /// Decode one symbol, reading bits MSB-of-code-first.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, DecodeError> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: u32 = 0;
        for len in 1..=MAX_BITS {
            code |= r.read_bit()?;
            let cnt = u32::from(self.count[len]);
            if code < first + cnt {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err(DecodeError::InvalidCode)
    }
}

/// Build length-limited Huffman code lengths from symbol frequencies.
///
/// Uses the classic two-queue Huffman construction followed by zlib's
/// overflow fix-up to cap depths at `max_bits`. Symbols with zero frequency
/// get length 0. If fewer than two symbols occur, the survivors get length 1
/// (Deflate requires at least one bit per emitted code and tolerates the
/// resulting incomplete tree for distance codes; for literal codes the
/// end-of-block symbol guarantees ≥ 1 nonzero frequency).
pub fn build_lengths(freqs: &[u64], max_bits: u8) -> Vec<u8> {
    assert!(max_bits as usize <= MAX_BITS);
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let active: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Heap-free O(n log n) Huffman: sort leaves, then merge with a queue.
    let mut leaves: Vec<(u64, usize)> = active.iter().map(|&i| (freqs[i], i)).collect();
    leaves.sort_unstable();

    // Internal nodes: (freq, left child, right child); children index into a
    // combined node space where 0..n are leaves and n.. are internal.
    let mut parent = vec![usize::MAX; leaves.len() * 2];
    let mut node_freq: Vec<u64> = Vec::with_capacity(leaves.len());
    let mut li = 0usize; // next unconsumed leaf
    let mut qi = 0usize; // next unconsumed internal node
    let num_leaves = leaves.len();
    let take_min = |li: &mut usize,
                    qi: &mut usize,
                    leaves: &[(u64, usize)],
                    node_freq: &[u64]|
     -> (u64, usize) {
        let leaf_ok = *li < leaves.len();
        let node_ok = *qi < node_freq.len();
        // Prefer the leaf on ties: produces the flattest trees, like zlib.
        if leaf_ok && (!node_ok || leaves[*li].0 <= node_freq[*qi]) {
            let v = (leaves[*li].0, *li);
            *li += 1;
            v
        } else {
            let v = (node_freq[*qi], num_leaves + *qi);
            *qi += 1;
            v
        }
    };
    while (num_leaves - li) + (node_freq.len() - qi) >= 2 {
        let (f1, c1) = take_min(&mut li, &mut qi, &leaves, &node_freq);
        let (f2, c2) = take_min(&mut li, &mut qi, &leaves, &node_freq);
        let new_idx = num_leaves + node_freq.len();
        parent[c1] = new_idx;
        parent[c2] = new_idx;
        node_freq.push(f1 + f2);
        if parent.len() <= new_idx {
            parent.resize(new_idx + 1, usize::MAX);
        }
    }

    // Depth of each leaf = chain length to the root.
    let mut bl_count = [0u32; MAX_BITS + 2];
    let mut depths = vec![0u8; num_leaves];
    for (leaf_idx, depth) in depths.iter_mut().enumerate() {
        let mut d = 0u32;
        let mut node = leaf_idx;
        while parent[node] != usize::MAX {
            node = parent[node];
            d += 1;
        }
        // Cap for the histogram; overflow handled below.
        *depth = d.min(u32::from(max_bits)) as u8;
        bl_count[d.min(u32::from(max_bits)) as usize] += 1;
        if d > u32::from(max_bits) {
            // Mark overflow by counting at max_bits; fix-up below rebalances.
        }
    }

    // zlib-style overflow fix-up: while the Kraft sum exceeds 1, demote.
    // Because we capped depths at max_bits, recompute the Kraft sum and move
    // leaves from shorter lengths down until it fits.
    loop {
        let kraft: u64 = (1..=max_bits as usize)
            .map(|l| u64::from(bl_count[l]) << (max_bits as usize - l))
            .sum();
        if kraft <= 1u64 << max_bits {
            break;
        }
        // Find the longest non-max length with entries, move one leaf deeper.
        let mut bits = max_bits as usize - 1;
        while bl_count[bits] == 0 {
            bits -= 1;
        }
        bl_count[bits] -= 1;
        bl_count[bits + 1] += 1;
    }

    // Reassign depths to leaves longest-codes-to-rarest-symbols: iterate
    // leaves from rarest to most frequent, drawing lengths from longest to
    // shortest. Canonicalisation later only cares about the multiset.
    let mut len_iter =
        (1..=max_bits as usize).rev().flat_map(|l| std::iter::repeat_n(l, bl_count[l] as usize));
    for &(_, sym) in &leaves {
        let l = len_iter.next().expect("length pool matches leaf count");
        lengths[sym] = l as u8;
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_example_codes() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield
        // codes 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(codes, vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
        assert_eq!(reverse_bits(0b101010101010101, 15), 0b101010101010101);
    }

    #[test]
    fn encode_decode_round_trip() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let book = Codebook::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let symbols = [5usize, 0, 7, 3, 5, 6, 1, 2, 4, 5, 5];
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u16);
        }
    }

    #[test]
    fn oversubscribed_lengths_rejected() {
        // Three codes of length 1 is impossible.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_none());
    }

    #[test]
    fn incomplete_code_is_buildable_but_gaps_error() {
        // Single symbol with length 1: valid per Deflate (distance trees).
        let dec = Decoder::from_lengths(&[1, 0]).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0, 1); // code 0 = symbol 0
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);

        let mut w = BitWriter::new();
        w.write_bits(0x7FFF, 15); // all-ones walks past every code
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r), Err(DecodeError::InvalidCode));
    }

    #[test]
    fn decode_out_of_input() {
        let dec = Decoder::from_lengths(&[2, 2, 2, 2]).unwrap();
        let bytes: [u8; 0] = [];
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r), Err(DecodeError::OutOfInput));
    }

    #[test]
    fn build_lengths_matches_entropy_ordering() {
        let freqs = [100u64, 1, 1, 50, 0, 25];
        let lengths = build_lengths(&freqs, 15);
        assert_eq!(lengths[4], 0, "zero-frequency symbol gets no code");
        assert!(lengths[0] <= lengths[3]);
        assert!(lengths[3] <= lengths[5]);
        assert!(lengths[5] <= lengths[1]);
        // Kraft equality for a complete code.
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 0.5f64.powi(l as i32)).sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft = {kraft}");
    }

    #[test]
    fn build_lengths_respects_limit() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let freqs: Vec<u64> = {
            let mut v = vec![1u64, 1];
            for i in 2..30 {
                let next = v[i - 1] + v[i - 2];
                v.push(next);
            }
            v
        };
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths.iter().all(|&l| l <= 15));
        let kraft: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 1u64 << (15 - l)).sum();
        assert!(kraft <= 1 << 15, "over-subscribed after limit: {kraft}");
        // The limited code must still be decodable end-to-end.
        assert!(Decoder::from_lengths(&lengths).is_some());
    }

    #[test]
    fn build_lengths_single_symbol() {
        let lengths = build_lengths(&[0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 1, 0]);
    }

    #[test]
    fn build_lengths_empty() {
        assert_eq!(build_lengths(&[0, 0], 15), vec![0, 0]);
    }

    #[test]
    fn built_code_round_trips_through_decoder() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let lengths = build_lengths(&freqs, 15);
        let book = Codebook::from_lengths(&lengths);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let msg = [0usize, 1, 2, 3, 4, 5, 7, 5, 5, 0];
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u16);
        }
    }
}
