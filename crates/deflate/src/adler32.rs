//! Adler-32 checksum (RFC 1950 §8.2) — the zlib container's integrity check.

const MOD_ADLER: u32 = 65_521;
/// Largest n such that 255*n*(n+1)/2 + (n+1)*(MOD-1) fits in u32 — the
/// standard deferred-modulo block size.
const NMAX: usize = 5_552;

/// Streaming Adler-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Initial state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Self { a: 1, b: 0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        for chunk in data.chunks(NMAX) {
            for &byte in chunk {
                self.a += u32::from(byte);
                self.b += self.a;
            }
            self.a %= MOD_ADLER;
            self.b %= MOD_ADLER;
        }
    }

    /// Current checksum value.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// One-shot Adler-32 of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = Adler32::new();
    a.update(data);
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_one() {
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn known_vectors() {
        // Standard test vectors (verifiable with `zlib.adler32` in Python).
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"message digest"), 0x29750586);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(100_000).collect();
        let mut s = Adler32::new();
        for chunk in data.chunks(977) {
            s.update(chunk);
        }
        assert_eq!(s.finish(), adler32(&data));
    }

    #[test]
    fn deferred_modulo_boundary() {
        // Exactly NMAX bytes of 0xFF stresses the overflow bound.
        let data = vec![0xFFu8; NMAX];
        let mut byte_at_a_time = Adler32::new();
        for &b in &data {
            byte_at_a_time.update(&[b]);
        }
        assert_eq!(adler32(&data), byte_at_a_time.finish());
    }
}
