//! Token stream → Deflate block encoder.
//!
//! Three block kinds are supported:
//!
//! * [`BlockKind::Stored`] — raw bytes, the worst-case escape hatch.
//! * [`BlockKind::FixedHuffman`] — the paper's hardware path: the fixed
//!   RFC 1951 tables, zero per-block table cost, fully pipelineable.
//! * [`BlockKind::DynamicHuffman`] — the software trade-off the paper cites
//!   ("the cost for the high performance is less efficient compression
//!   compared to the dynamic huffman coders"); implemented so the repo can
//!   quantify that gap.

use crate::bitio::BitWriter;
use crate::fixed::{
    distance_symbol, fixed_dist_lengths, fixed_litlen_lengths, length_symbol, END_OF_BLOCK,
    NUM_DIST, NUM_LITLEN,
};
use crate::huffman::{build_lengths, Codebook};
use crate::token::Token;

/// Deflate block type selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// BTYPE=00: stored (uncompressed) block.
    Stored,
    /// BTYPE=01: fixed Huffman tables.
    FixedHuffman,
    /// BTYPE=10: dynamic Huffman tables built from the block's statistics.
    DynamicHuffman,
}

/// Choose the cheapest block kind for `tokens`, the decision zlib makes per
/// block: stored wins only on incompressible data (and only when the tokens
/// are all literals), dynamic wins once its table preamble amortises,
/// fixed wins for short or skewed-toward-the-fixed-table content.
pub fn pick_block_kind(tokens: &[Token]) -> BlockKind {
    let fixed_bits = fixed_block_bit_size(tokens);
    let mut dyn_enc = DeflateEncoder::new();
    dyn_enc.write_block(tokens, BlockKind::DynamicHuffman, true);
    let dynamic_bits = dyn_enc.bit_len();
    let all_literals = tokens.iter().all(|t| matches!(t, Token::Literal(_)));
    let stored_bits = if all_literals {
        // 3-bit header + alignment + LEN/NLEN per 65535-byte chunk + bytes.
        let chunks = tokens.len().div_ceil(65_535).max(1) as u64;
        chunks * (8 + 32) + tokens.len() as u64 * 8
    } else {
        u64::MAX
    };
    if stored_bits < fixed_bits && stored_bits < dynamic_bits {
        BlockKind::Stored
    } else if dynamic_bits < fixed_bits {
        BlockKind::DynamicHuffman
    } else {
        BlockKind::FixedHuffman
    }
}

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
const CLCL_ORDER: [usize; 19] = [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15];

/// A Deflate bit-stream encoder over complete token blocks.
#[derive(Debug, Default)]
pub struct DeflateEncoder {
    writer: BitWriter,
}

impl DeflateEncoder {
    /// New encoder with an empty output stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode `tokens` as one block. `last` sets the BFINAL bit. For
    /// [`BlockKind::Stored`], the tokens must all be literals (the raw bytes).
    pub fn write_block(&mut self, tokens: &[Token], kind: BlockKind, last: bool) {
        match kind {
            BlockKind::Stored => self.write_stored(tokens, last),
            BlockKind::FixedHuffman => self.write_fixed(tokens, last),
            BlockKind::DynamicHuffman => self.write_dynamic(tokens, last),
        }
    }

    /// Bits emitted so far (before final alignment).
    pub fn bit_len(&self) -> u64 {
        self.writer.bit_len()
    }

    /// The completed output bytes so far (a still-buffered partial byte is
    /// excluded). Supports incremental delivery in streaming sessions.
    pub fn as_bytes(&self) -> &[u8] {
        self.writer.as_bytes()
    }

    /// Emit a zlib `Z_SYNC_FLUSH` marker: an empty non-final *stored* block,
    /// which forces byte alignment, so every bit written before this call is
    /// contained in — and decodable from — the bytes available after it.
    /// Costs 4 bytes plus up to 7 padding bits, exactly like zlib.
    pub fn sync_flush(&mut self) {
        self.writer.write_bits(0, 1); // BFINAL = 0
        self.writer.write_bits(0b00, 2); // BTYPE = stored
        self.writer.align_to_byte();
        // LEN = 0, NLEN = !0.
        for b in [0x00, 0x00, 0xFF, 0xFF] {
            self.writer.write_aligned_byte(b);
        }
    }

    /// Finish the Deflate stream and return its bytes.
    pub fn finish(self) -> Vec<u8> {
        self.writer.finish()
    }

    fn write_stored(&mut self, tokens: &[Token], last: bool) {
        let bytes: Vec<u8> = tokens
            .iter()
            .map(|t| match *t {
                Token::Literal(b) => b,
                Token::Match { .. } => {
                    panic!("stored blocks carry raw bytes; got a match token")
                }
            })
            .collect();
        // Stored blocks are capped at 65535 bytes; split as needed.
        let chunks: Vec<&[u8]> =
            if bytes.is_empty() { vec![&bytes[..]] } else { bytes.chunks(65_535).collect() };
        let n = chunks.len();
        for (i, chunk) in chunks.into_iter().enumerate() {
            let final_bit = last && i + 1 == n;
            self.writer.write_bits(u64::from(final_bit), 1);
            self.writer.write_bits(0b00, 2);
            self.writer.align_to_byte();
            let len = chunk.len() as u16;
            for b in len.to_le_bytes() {
                self.writer.write_aligned_byte(b);
            }
            for b in (!len).to_le_bytes() {
                self.writer.write_aligned_byte(b);
            }
            for &b in chunk {
                self.writer.write_aligned_byte(b);
            }
        }
    }

    fn write_fixed(&mut self, tokens: &[Token], last: bool) {
        self.writer.write_bits(u64::from(last), 1);
        self.writer.write_bits(0b01, 2);
        // The fixed codebooks never change; build them once per process.
        static FIXED: std::sync::OnceLock<(Codebook, Codebook)> = std::sync::OnceLock::new();
        let (litlen, dist) = FIXED.get_or_init(|| {
            (
                Codebook::from_lengths(&fixed_litlen_lengths()),
                Codebook::from_lengths(&fixed_dist_lengths()),
            )
        });
        self.write_symbols(tokens, litlen, dist);
    }

    fn write_dynamic(&mut self, tokens: &[Token], last: bool) {
        // Gather symbol statistics.
        let mut lit_freq = [0u64; NUM_LITLEN];
        let mut dist_freq = [0u64; NUM_DIST];
        for t in tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { dist, len } => {
                    lit_freq[length_symbol(len).symbol as usize] += 1;
                    dist_freq[distance_symbol(dist).symbol as usize] += 1;
                }
            }
        }
        lit_freq[END_OF_BLOCK] += 1;

        let lit_lengths = build_lengths(&lit_freq, 15);
        let mut dist_lengths = build_lengths(&dist_freq, 15);
        // HDIST must cover at least one code; zlib emits a single length-1
        // distance code when no matches occur.
        if dist_lengths.iter().all(|&l| l == 0) {
            dist_lengths[0] = 1;
        }

        let hlit = lit_lengths.iter().rposition(|&l| l != 0).map_or(257, |p| (p + 1).max(257));
        let hdist = dist_lengths.iter().rposition(|&l| l != 0).map_or(1, |p| p + 1);

        // RLE-compress the concatenated length vectors with symbols 16/17/18.
        let all_lengths: Vec<u8> =
            lit_lengths[..hlit].iter().chain(&dist_lengths[..hdist]).copied().collect();
        let clc_symbols = rle_code_lengths(&all_lengths);

        let mut clc_freq = [0u64; 19];
        for &(sym, _, _) in &clc_symbols {
            clc_freq[sym as usize] += 1;
        }
        // Code-length codes are capped at 7 bits.
        let clc_lengths = build_lengths(&clc_freq, 7);

        let hclen =
            CLCL_ORDER.iter().rposition(|&s| clc_lengths[s] != 0).map_or(4, |p| (p + 1).max(4));

        self.writer.write_bits(u64::from(last), 1);
        self.writer.write_bits(0b10, 2);
        self.writer.write_bits((hlit - 257) as u64, 5);
        self.writer.write_bits((hdist - 1) as u64, 5);
        self.writer.write_bits((hclen - 4) as u64, 4);
        for &s in &CLCL_ORDER[..hclen] {
            self.writer.write_bits(u64::from(clc_lengths[s]), 3);
        }
        let clc_book = Codebook::from_lengths(&clc_lengths);
        for &(sym, extra_bits, extra_val) in &clc_symbols {
            clc_book.encode(&mut self.writer, sym as usize);
            self.writer.write_bits(u64::from(extra_val), extra_bits);
        }

        let litlen = Codebook::from_lengths(&lit_lengths);
        let dist = Codebook::from_lengths(&dist_lengths);
        self.write_symbols(tokens, &litlen, &dist);
    }

    fn write_symbols(&mut self, tokens: &[Token], litlen: &Codebook, dist: &Codebook) {
        // Direct (code, bits) table for the literal path: one fixed-size
        // array index per literal instead of two slice loads, and the
        // missing-code check is hoisted to a single cheap compare.
        let mut lit = [(0u16, 0u8); 256];
        for (b, entry) in lit.iter_mut().enumerate() {
            if litlen.length(b) > 0 {
                *entry = litlen.code(b);
            }
        }
        for t in tokens {
            match *t {
                Token::Literal(b) => {
                    let (c, l) = lit[b as usize];
                    assert!(l > 0, "literal {b} has no code");
                    self.writer.write_bits(u64::from(c), u32::from(l));
                }
                Token::Match { dist: d, len } => {
                    // Compose all four fields (length code + extra, distance
                    // code + extra, at most 15+5+15+13 = 48 bits) into one
                    // accumulator write — the per-token cost is dominated by
                    // `write_bits` calls, not the table lookups.
                    let ls = length_symbol(len);
                    let (lc, ll) = litlen.code(ls.symbol as usize);
                    let ds = distance_symbol(d);
                    let (dc, dl) = dist.code(ds.symbol as usize);
                    let mut v = u64::from(lc);
                    let mut n = u32::from(ll);
                    v |= u64::from(ls.extra_val) << n;
                    n += ls.extra_bits;
                    v |= u64::from(dc) << n;
                    n += u32::from(dl);
                    v |= u64::from(ds.extra_val) << n;
                    n += ds.extra_bits;
                    self.writer.write_bits(v, n);
                }
            }
        }
        litlen.encode(&mut self.writer, END_OF_BLOCK);
    }
}

/// Run-length encode code lengths into `(symbol, extra_bits, extra_val)`
/// triples using RFC 1951's 16/17/18 repeat codes.
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u16, u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lengths.len() {
        let cur = lengths[i];
        let mut run = 1;
        while i + run < lengths.len() && lengths[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut remaining = run;
            while remaining >= 11 {
                let n = remaining.min(138);
                out.push((18, 7, (n - 11) as u32));
                remaining -= n;
            }
            if remaining >= 3 {
                out.push((17, 3, (remaining - 3) as u32));
                remaining = 0;
            }
            for _ in 0..remaining {
                out.push((0, 0, 0));
            }
        } else {
            out.push((u16::from(cur), 0, 0));
            let mut remaining = run - 1;
            while remaining >= 3 {
                let n = remaining.min(6);
                out.push((16, 2, (n - 3) as u32));
                remaining -= n;
            }
            for _ in 0..remaining {
                out.push((u16::from(cur), 0, 0));
            }
        }
        i += run;
    }
    out
}

/// Exact size in bits of `tokens` under the fixed tables (including the
/// 3-bit block header and end-of-block symbol). Used by the hardware model's
/// Huffman stage to produce byte-exact output counts without re-encoding.
pub fn fixed_block_bit_size(tokens: &[Token]) -> u64 {
    let lit_lengths = fixed_litlen_lengths();
    let mut bits: u64 = 3 + u64::from(lit_lengths[END_OF_BLOCK]);
    for t in tokens {
        bits += match *t {
            Token::Literal(b) => u64::from(lit_lengths[b as usize]),
            Token::Match { dist, len } => {
                let ls = length_symbol(len);
                let ds = distance_symbol(dist);
                u64::from(lit_lengths[ls.symbol as usize])
                    + u64::from(ls.extra_bits)
                    + 5
                    + u64::from(ds.extra_bits)
            }
        };
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;
    use crate::token::Token as T;

    fn literals(data: &[u8]) -> Vec<T> {
        data.iter().copied().map(T::Literal).collect()
    }

    #[test]
    fn stored_block_round_trip() {
        let data = b"hello stored world";
        let mut enc = DeflateEncoder::new();
        enc.write_block(&literals(data), BlockKind::Stored, true);
        let stream = enc.finish();
        assert_eq!(inflate(&stream).unwrap(), data);
    }

    #[test]
    fn empty_stored_block() {
        let mut enc = DeflateEncoder::new();
        enc.write_block(&[], BlockKind::Stored, true);
        let stream = enc.finish();
        assert_eq!(inflate(&stream).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn fixed_block_round_trip_literals_only() {
        let data = b"abcabcabc";
        let mut enc = DeflateEncoder::new();
        enc.write_block(&literals(data), BlockKind::FixedHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), data);
    }

    #[test]
    fn fixed_block_round_trip_with_matches() {
        // "snowy snow": 6 literals + match(dist 6, len 4).
        let mut tokens = literals(b"snowy ");
        tokens.push(T::new_match(6, 4));
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::FixedHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), b"snowy snow");
    }

    #[test]
    fn overlapping_match_expands_correctly() {
        // 'a' then match(dist 1, len 10) = "aaaaaaaaaaa".
        let tokens = vec![T::Literal(b'a'), T::new_match(1, 10)];
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::FixedHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), b"aaaaaaaaaaa");
    }

    #[test]
    fn dynamic_block_round_trip() {
        let sentence = b"the quick brown fox jumps over the lazy dog "; // 44 bytes
        let mut tokens = literals(sentence);
        tokens.push(T::new_match(44, 9)); // replay "the quick" from the start
        tokens.extend(literals(b"END"));
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::DynamicHuffman, true);
        let out = inflate(&enc.finish()).unwrap();
        assert_eq!(&out[..44], sentence);
        assert_eq!(&out[44..53], b"the quick");
        assert_eq!(&out[53..], b"END");
    }

    #[test]
    fn dynamic_block_no_matches() {
        let tokens = literals(b"zzzzzzzzzzzzzzzzzzzzyyyyx");
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::DynamicHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), b"zzzzzzzzzzzzzzzzzzzzyyyyx");
    }

    #[test]
    fn dynamic_beats_fixed_on_skewed_data() {
        // Highly skewed literal distribution favours dynamic tables.
        let data: Vec<u8> = (0..4000).map(|i| if i % 17 == 0 { b'b' } else { b'a' }).collect();
        let tokens = literals(&data);
        let mut fx = DeflateEncoder::new();
        fx.write_block(&tokens, BlockKind::FixedHuffman, true);
        let mut dy = DeflateEncoder::new();
        dy.write_block(&tokens, BlockKind::DynamicHuffman, true);
        let (f, d) = (fx.finish(), dy.finish());
        assert_eq!(inflate(&f).unwrap(), data);
        assert_eq!(inflate(&d).unwrap(), data);
        assert!(d.len() < f.len(), "dynamic {} !< fixed {}", d.len(), f.len());
    }

    #[test]
    fn multi_block_stream() {
        let mut enc = DeflateEncoder::new();
        enc.write_block(&literals(b"first block "), BlockKind::FixedHuffman, false);
        enc.write_block(&literals(b"second block "), BlockKind::Stored, false);
        enc.write_block(&literals(b"third"), BlockKind::DynamicHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), b"first block second block third");
    }

    #[test]
    fn large_stored_payload_splits_blocks() {
        let data = vec![0x5Au8; 70_000];
        let mut enc = DeflateEncoder::new();
        enc.write_block(&literals(&data), BlockKind::Stored, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), data);
    }

    #[test]
    fn fixed_bit_size_matches_actual_encoding() {
        let mut tokens = literals(b"hello hello hello ");
        tokens.push(T::new_match(6, 12));
        tokens.push(T::Literal(0xF0)); // a 9-bit literal
        let predicted = fixed_block_bit_size(&tokens);
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens, BlockKind::FixedHuffman, true);
        let actual_bits = enc.bit_len();
        assert_eq!(predicted, actual_bits);
    }

    #[test]
    #[should_panic(expected = "stored blocks carry raw bytes")]
    fn stored_block_rejects_matches() {
        let mut enc = DeflateEncoder::new();
        enc.write_block(&[T::new_match(1, 3)], BlockKind::Stored, true);
    }
}

#[cfg(test)]
mod pick_tests {
    use super::*;
    use crate::inflate::inflate;
    use crate::token::Token as T;

    fn literals(data: &[u8]) -> Vec<T> {
        data.iter().copied().map(T::Literal).collect()
    }

    #[test]
    fn random_literals_pick_stored() {
        let mut x = 0x9E37_79B9u32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        assert_eq!(pick_block_kind(&literals(&data)), BlockKind::Stored);
    }

    #[test]
    fn skewed_text_picks_dynamic() {
        let tokens = literals(&b"aaaaabbbbbcccc".repeat(500));
        assert_eq!(pick_block_kind(&tokens), BlockKind::DynamicHuffman);
    }

    #[test]
    fn tiny_blocks_pick_fixed() {
        // The dynamic preamble (~dozens of bytes) dwarfs a few symbols.
        let tokens = literals(b"hi");
        assert_eq!(pick_block_kind(&tokens), BlockKind::FixedHuffman);
    }

    #[test]
    fn picked_kind_is_never_beaten_and_always_decodes() {
        let cases: Vec<Vec<T>> =
            vec![literals(b"short"), literals(&b"the quick brown fox ".repeat(200)), {
                let mut t = literals(b"seed data");
                t.push(T::new_match(9, 258));
                t.push(T::new_match(4, 37));
                t
            }];
        for tokens in cases {
            let picked = pick_block_kind(&tokens);
            let size = |kind| {
                let mut e = DeflateEncoder::new();
                e.write_block(&tokens, kind, true);
                e.bit_len()
            };
            let best = size(picked);
            for kind in [BlockKind::FixedHuffman, BlockKind::DynamicHuffman] {
                assert!(best <= size(kind), "{picked:?} beaten by {kind:?}");
            }
            let mut e = DeflateEncoder::new();
            e.write_block(&tokens, picked, true);
            assert!(inflate(&e.finish()).is_ok());
        }
    }
}
