//! Token sinks: where a compressor front-end delivers its command stream.
//!
//! The hardware pipeline hands tokens from the LZSS matcher to the Huffman
//! back-end over a FIFO; the software fast path wants the same decoupling so
//! the match kernel never allocates and the consumer chooses whether to
//! buffer, count, or encode on the fly. A [`TokenSink`] is that FIFO's
//! software shape: the matcher pushes literals and matches, the sink decides
//! what to do with them.

use crate::token::Token;

/// Consumer of an LZSS command stream, fed in output order.
///
/// Implementations must not reorder: the byte stream a sink sees is exactly
/// `sum(literal | match)` in emission order, which is what makes a sink's
/// view equivalent to a `Vec<Token>` buffer.
pub trait TokenSink {
    /// One literal byte.
    fn literal(&mut self, byte: u8);

    /// One back-reference: copy `len` bytes from `dist` bytes back.
    /// Callers guarantee Deflate-representable ranges (`dist` in
    /// `1..=32768`, `len` in `3..=258`).
    fn matched(&mut self, dist: u32, len: u32);
}

/// The trivial sink: buffer every token.
impl TokenSink for Vec<Token> {
    #[inline]
    fn literal(&mut self, byte: u8) {
        self.push(Token::Literal(byte));
    }

    #[inline]
    fn matched(&mut self, dist: u32, len: u32) {
        debug_assert!((1..=32_768).contains(&dist));
        debug_assert!((3..=258).contains(&len));
        self.push(Token::Match { dist, len });
    }
}

/// A sink that only counts, for ratio estimation without buffering.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    /// Literal tokens seen.
    pub literals: u64,
    /// Match tokens seen.
    pub matches: u64,
    /// Uncompressed bytes covered by all tokens so far.
    pub expanded_bytes: u64,
}

impl TokenSink for CountingSink {
    #[inline]
    fn literal(&mut self, _byte: u8) {
        self.literals += 1;
        self.expanded_bytes += 1;
    }

    #[inline]
    fn matched(&mut self, _dist: u32, len: u32) {
        self.matches += 1;
        self.expanded_bytes += u64::from(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut v: Vec<Token> = Vec::new();
        v.literal(b'a');
        v.matched(6, 4);
        v.literal(b'z');
        assert_eq!(
            v,
            vec![Token::Literal(b'a'), Token::Match { dist: 6, len: 4 }, Token::Literal(b'z')]
        );
    }

    #[test]
    fn counting_sink_tracks_coverage() {
        let mut c = CountingSink::default();
        c.literal(b'x');
        c.matched(1, 258);
        c.matched(10, 3);
        assert_eq!(c.literals, 1);
        assert_eq!(c.matches, 2);
        assert_eq!(c.expanded_bytes, 262);
    }
}
