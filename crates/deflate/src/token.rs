//! The literal/match token stream shared by every compressor stage.
//!
//! This is the "decompressor command" alphabet of §III of the paper: a token
//! either emits one literal byte or copy-pastes `len` bytes from `dist` bytes
//! back. On the paper's bit level a command is a `(D, L)` pair where `D == 0`
//! means literal; [`Token::to_dl_pair`]/[`Token::from_dl_pair`] provide that
//! exact wire form so tests can exercise the §III format directly.

use crate::fixed::{MAX_DISTANCE, MAX_MATCH, MIN_MATCH};

/// One LZSS decompressor command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// Output one literal byte.
    Literal(u8),
    /// Copy `len` bytes starting `dist` bytes before the current output
    /// position (self-overlapping copies allowed, as in LZ77).
    Match {
        /// Copy distance in bytes, `1..=32768`.
        dist: u32,
        /// Copy length in bytes, `3..=258`.
        len: u32,
    },
}

impl Token {
    /// Construct a match token, validating the Deflate-representable ranges.
    ///
    /// # Panics
    /// Panics when `dist`/`len` fall outside `1..=32768` / `3..=258`.
    pub fn new_match(dist: u32, len: u32) -> Self {
        assert!((1..=MAX_DISTANCE).contains(&dist), "distance {dist} out of range");
        assert!((MIN_MATCH..=MAX_MATCH).contains(&len), "length {len} out of range");
        Token::Match { dist, len }
    }

    /// Number of uncompressed bytes this token expands to.
    #[inline]
    pub fn expanded_len(&self) -> u32 {
        match *self {
            Token::Literal(_) => 1,
            Token::Match { len, .. } => len,
        }
    }

    /// Encode as the paper's `(D, L)` pair: `D == 0` means literal with the
    /// byte in `L`; otherwise `D` is the distance and `L` the length minus 3.
    pub fn to_dl_pair(&self) -> (u16, u8) {
        match *self {
            Token::Literal(b) => (0, b),
            Token::Match { dist, len } => {
                debug_assert!(dist <= u32::from(u16::MAX));
                debug_assert!(len - MIN_MATCH <= 255);
                (dist as u16, (len - MIN_MATCH) as u8)
            }
        }
    }

    /// Decode from the paper's `(D, L)` pair.
    pub fn from_dl_pair(d: u16, l: u8) -> Self {
        if d == 0 {
            Token::Literal(l)
        } else {
            Token::Match { dist: u32::from(d), len: u32::from(l) + MIN_MATCH }
        }
    }
}

/// Sum of expanded lengths over a token stream.
pub fn expanded_len(tokens: &[Token]) -> u64 {
    tokens.iter().map(|t| u64::from(t.expanded_len())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_pair_round_trip_literal() {
        for b in [0u8, 1, 127, 255] {
            let t = Token::Literal(b);
            let (d, l) = t.to_dl_pair();
            assert_eq!(d, 0);
            assert_eq!(Token::from_dl_pair(d, l), t);
        }
    }

    #[test]
    fn dl_pair_round_trip_match() {
        for (dist, len) in [(1u32, 3u32), (6, 4), (4096, 258), (32_768, 100)] {
            let t = Token::new_match(dist, len);
            let (d, l) = t.to_dl_pair();
            assert_ne!(d, 0);
            assert_eq!(Token::from_dl_pair(d, l), t);
        }
    }

    #[test]
    fn snowy_snow_example() {
        // The paper's example: "snowy snow" = 6 literals + copy(len 4, dist 6).
        let tokens: Vec<Token> =
            "snowy ".bytes().map(Token::Literal).chain([Token::new_match(6, 4)]).collect();
        assert_eq!(tokens.len(), 7);
        assert_eq!(expanded_len(&tokens), 10);
    }

    #[test]
    #[should_panic(expected = "length 2 out of range")]
    fn short_match_rejected() {
        let _ = Token::new_match(5, 2);
    }

    #[test]
    #[should_panic(expected = "distance 0 out of range")]
    fn zero_distance_rejected() {
        let _ = Token::new_match(0, 3);
    }
}
