//! Reference vectors produced by the *real* zlib (madler zlib 1.2.13 via
//! CPython's `zlib` module) for interoperability checks: our inflate must
//! accept genuine zlib output at several compression levels, proving the
//! format layer is the actual RFC 1950/1951 wire format and not a private
//! dialect that merely round-trips against itself.

/// The plaintext all three reference streams decode to.
pub fn interop_text() -> Vec<u8> {
    let mut v = Vec::new();
    for _ in 0..8 {
        v.extend_from_slice(b"Embedded network loggers produce highly redundant streams. ");
    }
    for _ in 0..4 {
        v.extend_from_slice(
            b"Compressing the logged stream in real time relaxes the size and bandwidth \
              requirements for the underlying storage media. ",
        );
    }
    v
}

/// `zlib.compress(text, 1)` from CPython's zlib (madler zlib 1.2.13).
pub const ZLIB_LEVEL1: &[u8] = &[
    120, 1, 237, 147, 93, 14, 194, 64, 8, 132, 175, 194, 9, 122, 9, 211, 131, 108, 101, 220, 37,
    238, 79, 5, 154, 90, 79, 239, 218, 122, 6, 227, 67, 95, 8, 9, 3, 36, 243, 193, 88, 38, 48, 131,
    169, 194, 215, 166, 119, 202, 45, 70, 168, 209, 172, 141, 151, 43, 40, 73, 76, 121, 35, 5, 47,
    149, 67, 117, 50, 87, 132, 98, 3, 141, 103, 235, 255, 218, 116, 105, 101, 86, 152, 73, 141,
    228, 9, 7, 86, 254, 194, 35, 169, 29, 104, 200, 228, 82, 208, 179, 28, 158, 176, 93, 102, 242,
    2, 133, 202, 52, 245, 176, 10, 123, 234, 229, 199, 34, 138, 130, 234, 70, 183, 166, 187, 174,
    223, 2, 52, 111, 159, 233, 230, 77, 67, 4, 21, 176, 132, 129, 206, 197, 251, 7, 253, 194, 234,
    55, 209, 117, 102, 252,
];
/// `zlib.compress(text, 6)` from CPython's zlib (madler zlib 1.2.13).
pub const ZLIB_LEVEL6: &[u8] = &[
    120, 156, 237, 141, 221, 13, 194, 48, 12, 132, 87, 241, 4, 44, 129, 58, 72, 138, 143, 196, 34,
    63, 197, 118, 84, 202, 244, 132, 194, 12, 136, 135, 190, 88, 39, 221, 125, 254, 166, 50, 131,
    25, 76, 21, 190, 54, 189, 81, 110, 49, 66, 141, 22, 109, 220, 47, 160, 36, 49, 229, 141, 20,
    220, 43, 135, 234, 100, 174, 8, 197, 78, 52, 29, 232, 255, 162, 231, 86, 22, 133, 153, 212, 72,
    158, 240, 33, 249, 219, 147, 212, 193, 132, 76, 46, 5, 35, 229, 240, 128, 237, 51, 147, 39, 40,
    84, 166, 121, 156, 85, 216, 211, 168, 239, 93, 20, 5, 213, 141, 174, 77, 247, 221, 208, 65,
    243, 246, 254, 110, 222, 52, 68, 80, 1, 75, 56, 196, 63, 20, 191, 0, 209, 117, 102, 252,
];
/// `zlib.compress(text, 9)` from CPython's zlib (madler zlib 1.2.13).
pub const ZLIB_LEVEL9: &[u8] = &[
    120, 218, 237, 141, 221, 13, 194, 48, 12, 132, 87, 241, 4, 44, 129, 58, 72, 138, 143, 196, 34,
    63, 197, 118, 84, 202, 244, 132, 194, 12, 136, 135, 190, 88, 39, 221, 125, 254, 166, 50, 131,
    25, 76, 21, 190, 54, 189, 81, 110, 49, 66, 141, 22, 109, 220, 47, 160, 36, 49, 229, 141, 20,
    220, 43, 135, 234, 100, 174, 8, 197, 78, 52, 29, 232, 255, 162, 231, 86, 22, 133, 153, 212, 72,
    158, 240, 33, 249, 219, 147, 212, 193, 132, 76, 46, 5, 35, 229, 240, 128, 237, 51, 147, 39, 40,
    84, 166, 121, 156, 85, 216, 211, 168, 239, 93, 20, 5, 213, 141, 174, 77, 247, 221, 208, 65,
    243, 246, 254, 110, 222, 52, 68, 80, 1, 75, 56, 196, 63, 20, 191, 0, 209, 117, 102, 252,
];
#[cfg(test)]
mod tests {
    use super::*;
    use crate::zlib::zlib_decompress;

    #[test]
    fn real_zlib_streams_inflate_to_the_text() {
        let text = interop_text();
        for (level, stream) in [(1, ZLIB_LEVEL1), (6, ZLIB_LEVEL6), (9, ZLIB_LEVEL9)] {
            let out = zlib_decompress(stream)
                .unwrap_or_else(|e| panic!("level {level} reference stream rejected: {e:?}"));
            assert_eq!(out, text, "level {level} decodes to the wrong bytes");
        }
    }

    #[test]
    fn higher_levels_are_no_bigger() {
        assert!(ZLIB_LEVEL6.len() <= ZLIB_LEVEL1.len());
        assert!(ZLIB_LEVEL9.len() <= ZLIB_LEVEL6.len());
    }
}
