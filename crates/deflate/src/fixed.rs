//! RFC 1951 fixed Huffman tables and the length/distance code mappings.
//!
//! The hardware design uses exactly these tables: because they are fixed,
//! "no additional clock cycles or memories are required to build it and the
//! encoder does not introduce any delays" (§IV). The same mappings drive the
//! dynamic encoder's symbol statistics.

/// Number of literal/length symbols (0–285 used, 286–287 reserved but coded).
pub const NUM_LITLEN: usize = 288;
/// Number of distance symbols (0–29 used, 30–31 reserved).
pub const NUM_DIST: usize = 32;
/// End-of-block symbol.
pub const END_OF_BLOCK: usize = 256;
/// Minimum match length representable by a length code.
pub const MIN_MATCH: u32 = 3;
/// Maximum match length representable by a length code.
pub const MAX_MATCH: u32 = 258;
/// Maximum distance representable by a distance code.
pub const MAX_DISTANCE: u32 = 32_768;

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub fn fixed_litlen_lengths() -> [u8; NUM_LITLEN] {
    let mut l = [0u8; NUM_LITLEN];
    for (i, slot) in l.iter_mut().enumerate() {
        *slot = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    l
}

/// Fixed distance code lengths: 5 bits for all 32 symbols.
pub fn fixed_dist_lengths() -> [u8; NUM_DIST] {
    [5u8; NUM_DIST]
}

/// `(base_length, extra_bits)` for length codes 257..=285, index 0 = code 257.
pub const LENGTH_CODES: [(u32, u32); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base_distance, extra_bits)` for distance codes 0..=29.
pub const DIST_CODES: [(u32, u32); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12_289, 12),
    (16_385, 13),
    (24_577, 13),
];

/// Encoded form of a match length: the litlen symbol plus its extra bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LengthSym {
    /// Literal/length alphabet symbol (257..=285).
    pub symbol: u16,
    /// Number of extra bits.
    pub extra_bits: u32,
    /// Extra-bit value (length − base).
    pub extra_val: u32,
}

/// Encoded form of a match distance: the distance symbol plus extra bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistSym {
    /// Distance alphabet symbol (0..=29).
    pub symbol: u16,
    /// Number of extra bits.
    pub extra_bits: u32,
    /// Extra-bit value (distance − base).
    pub extra_val: u32,
}

/// Map a match length (3..=258) to its code.
///
/// # Panics
/// Panics on lengths outside the representable range.
pub fn length_symbol(len: u32) -> LengthSym {
    assert!((MIN_MATCH..=MAX_MATCH).contains(&len), "match length {len} out of range");
    // Length 258 has a dedicated zero-extra code and must not be encoded as
    // 227 + 31 even though that also fits (zlib always uses code 285).
    if len == MAX_MATCH {
        return LengthSym { symbol: 285, extra_bits: 0, extra_val: 0 };
    }
    // Binary search over bases (29 entries — a linear scan would do, but the
    // encoder calls this per token).
    let idx = match LENGTH_CODES.binary_search_by_key(&len, |&(base, _)| base) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let (base, extra) = LENGTH_CODES[idx];
    LengthSym { symbol: (257 + idx) as u16, extra_bits: extra, extra_val: len - base }
}

/// Map a match distance (1..=32768) to its code.
///
/// # Panics
/// Panics on distances outside the representable range.
pub fn distance_symbol(dist: u32) -> DistSym {
    assert!((1..=MAX_DISTANCE).contains(&dist), "distance {dist} out of range");
    let idx = match DIST_CODES.binary_search_by_key(&dist, |&(base, _)| base) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    let (base, extra) = DIST_CODES[idx];
    DistSym { symbol: idx as u16, extra_bits: extra, extra_val: dist - base }
}

/// Decode side: `(base, extra_bits)` for a length symbol (257..=285).
pub fn length_base(symbol: u16) -> Option<(u32, u32)> {
    LENGTH_CODES.get(symbol.checked_sub(257)? as usize).copied()
}

/// Decode side: `(base, extra_bits)` for a distance symbol (0..=29).
pub fn distance_base(symbol: u16) -> Option<(u32, u32)> {
    DIST_CODES.get(symbol as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_litlen_lengths_match_rfc() {
        let l = fixed_litlen_lengths();
        assert_eq!(l[0], 8);
        assert_eq!(l[143], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[255], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[279], 7);
        assert_eq!(l[280], 8);
        assert_eq!(l[287], 8);
        // The fixed code is complete: Kraft sum == 1.
        let kraft: u64 = l.iter().map(|&b| 1u64 << (15 - b)).sum();
        assert_eq!(kraft, 1 << 15);
    }

    #[test]
    fn every_length_maps_and_inverts() {
        for len in MIN_MATCH..=MAX_MATCH {
            let s = length_symbol(len);
            assert!((257..=285).contains(&s.symbol), "len {len} -> {s:?}");
            let (base, extra) = length_base(s.symbol).unwrap();
            assert_eq!(extra, s.extra_bits);
            assert_eq!(base + s.extra_val, len, "len {len}");
            assert!(s.extra_val < (1 << s.extra_bits) || s.extra_bits == 0);
        }
    }

    #[test]
    fn every_distance_maps_and_inverts() {
        for dist in 1..=MAX_DISTANCE {
            let s = distance_symbol(dist);
            assert!(s.symbol <= 29, "dist {dist} -> {s:?}");
            let (base, extra) = distance_base(s.symbol).unwrap();
            assert_eq!(extra, s.extra_bits);
            assert_eq!(base + s.extra_val, dist, "dist {dist}");
            assert!(s.extra_val < (1 << s.extra_bits) || s.extra_bits == 0);
        }
    }

    #[test]
    fn length_258_uses_code_285() {
        assert_eq!(length_symbol(258), LengthSym { symbol: 285, extra_bits: 0, extra_val: 0 });
    }

    #[test]
    fn boundary_lengths() {
        assert_eq!(length_symbol(3).symbol, 257);
        assert_eq!(length_symbol(10).symbol, 264);
        assert_eq!(length_symbol(11).symbol, 265);
        assert_eq!(length_symbol(257).symbol, 284);
        assert_eq!(length_symbol(257).extra_val, 30);
    }

    #[test]
    fn boundary_distances() {
        assert_eq!(distance_symbol(1).symbol, 0);
        assert_eq!(distance_symbol(4).symbol, 3);
        assert_eq!(distance_symbol(5).symbol, 4);
        assert_eq!(distance_symbol(24_577).symbol, 29);
        assert_eq!(distance_symbol(32_768).symbol, 29);
        assert_eq!(distance_symbol(32_768).extra_val, 8_191);
    }

    #[test]
    fn decode_side_rejects_out_of_range() {
        assert!(length_base(256).is_none());
        assert!(length_base(286).is_none());
        assert!(distance_base(30).is_none());
    }
}
