//! Property tests over the format layer: bit I/O, canonical Huffman
//! construction, token codecs and whole-block encode/decode, under inputs
//! drawn from a seeded in-repo xorshift generator (deterministic, no
//! external framework).

use lzfpga_deflate::adler32::{adler32, Adler32};
use lzfpga_deflate::bitio::{BitReader, BitWriter};
use lzfpga_deflate::crc32::{crc32, Crc32};
use lzfpga_deflate::encoder::{BlockKind, DeflateEncoder};
use lzfpga_deflate::fixed::{distance_symbol, length_symbol, MAX_MATCH, MIN_MATCH};
use lzfpga_deflate::huffman::{build_lengths, canonical_codes, Codebook, Decoder};
use lzfpga_deflate::inflate::inflate;
use lzfpga_deflate::token::Token;
use lzfpga_sim::rng::XorShift64;

const CASES: usize = 64;

/// Random bit-field sequences: (value, width) with value < 2^width.
fn bit_fields(rng: &mut XorShift64) -> Vec<(u64, u32)> {
    (0..rng.below_usize(200))
        .map(|_| {
            let w = rng.range_u32(1, 57);
            let max = if w == 57 { u64::MAX >> 7 } else { (1u64 << w) - 1 };
            (rng.next_below(max + 1), w)
        })
        .collect()
}

/// A structurally valid token stream (matches never reach before start).
fn token_stream(rng: &mut XorShift64) -> Vec<Token> {
    let raw: Vec<Token> = (0..rng.below_usize(300))
        .map(|_| {
            if rng.chance(1, 2) {
                Token::Literal(rng.next_u8())
            } else {
                Token::Match {
                    dist: rng.range_u32(1, 600),
                    len: rng.range_u32(MIN_MATCH, MAX_MATCH),
                }
            }
        })
        .collect();
    // Legalise: matches may only reach into already-produced output.
    let mut produced = 0u32;
    let mut out = Vec::with_capacity(raw.len());
    for t in raw {
        match t {
            Token::Literal(_) => {
                out.push(t);
                produced += 1;
            }
            Token::Match { dist, len } => {
                if produced == 0 {
                    out.push(Token::Literal(0x55));
                    produced += 1;
                }
                let dist = dist.min(produced);
                out.push(Token::Match { dist, len });
                produced += len;
            }
        }
    }
    out
}

fn random_freqs(rng: &mut XorShift64) -> Vec<u64> {
    (0..2 + rng.below_usize(58)).map(|_| rng.next_below(1_000)).collect()
}

fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                for _ in 0..len {
                    let b = out[out.len() - dist as usize];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[test]
fn bitio_round_trips() {
    let mut rng = XorShift64::new(0xDEF1_0001);
    for _ in 0..CASES {
        let fields = bit_fields(&mut rng);
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}

#[test]
fn canonical_codes_are_prefix_free() {
    let mut rng = XorShift64::new(0xDEF1_0002);
    for _ in 0..CASES {
        let freqs = random_freqs(&mut rng);
        let lengths = build_lengths(&freqs, 15);
        // Kraft inequality.
        let kraft: f64 =
            lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-i32::from(l))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
        // Every symbol with nonzero frequency got a code.
        for (i, &f) in freqs.iter().enumerate() {
            if f > 0 {
                assert!(lengths[i] > 0, "symbol {i} lost its code");
            }
        }
        // Canonical codes of equal length are distinct.
        let codes = canonical_codes(&lengths);
        for i in 0..lengths.len() {
            for j in (i + 1)..lengths.len() {
                if lengths[i] != 0 && lengths[i] == lengths[j] {
                    assert_ne!(codes[i], codes[j]);
                }
            }
        }
    }
}

#[test]
fn huffman_encode_decode_inverts() {
    let mut rng = XorShift64::new(0xDEF1_0003);
    for _ in 0..CASES {
        let mut freqs = random_freqs(&mut rng);
        // Ensure at least two used symbols so a real tree exists.
        freqs[0] += 1;
        let last = freqs.len() - 1;
        freqs[last] += 1;
        let lengths = build_lengths(&freqs, 15);
        let book = Codebook::from_lengths(&lengths);
        let decoder = Decoder::from_lengths(&lengths).expect("valid lengths");
        let symbols: Vec<usize> =
            freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(i, _)| i).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(decoder.decode(&mut r).unwrap() as usize, s);
        }
    }
}

#[test]
fn token_dl_pairs_round_trip() {
    let mut rng = XorShift64::new(0xDEF1_0004);
    for _ in 0..CASES {
        for t in &token_stream(&mut rng) {
            let (d, l) = t.to_dl_pair();
            assert_eq!(&Token::from_dl_pair(d, l), t);
        }
    }
}

#[test]
fn fixed_and_dynamic_blocks_inflate() {
    let mut rng = XorShift64::new(0xDEF1_0005);
    for _ in 0..CASES {
        let tokens = token_stream(&mut rng);
        let expected = expand(&tokens);
        for kind in [BlockKind::FixedHuffman, BlockKind::DynamicHuffman] {
            let mut enc = DeflateEncoder::new();
            enc.write_block(&tokens, kind, true);
            let stream = enc.finish();
            assert_eq!(&inflate(&stream).unwrap(), &expected, "{kind:?}");
        }
    }
}

#[test]
fn multi_block_streams_inflate() {
    let mut rng = XorShift64::new(0xDEF1_0006);
    for _ in 0..CASES {
        let tokens = token_stream(&mut rng);
        let expected = expand(&tokens);
        let cut = rng.below_usize(300).min(tokens.len());
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens[..cut], BlockKind::FixedHuffman, false);
        enc.sync_flush();
        enc.write_block(&tokens[cut..], BlockKind::DynamicHuffman, true);
        assert_eq!(inflate(&enc.finish()).unwrap(), expected);
    }
}

#[test]
fn checksums_are_chunking_invariant() {
    let mut rng = XorShift64::new(0xDEF1_0007);
    for _ in 0..CASES {
        let mut data = vec![0u8; rng.below_usize(5_000)];
        rng.fill_bytes(&mut data);
        let cut = rng.below_usize(5_000).min(data.len());
        let mut a = Adler32::new();
        a.update(&data[..cut]);
        a.update(&data[cut..]);
        assert_eq!(a.finish(), adler32(&data));
        let mut c = Crc32::new();
        c.update(&data[..cut]);
        c.update(&data[cut..]);
        assert_eq!(c.finish(), crc32(&data));
    }
}

#[test]
fn length_and_distance_symbols_cover_their_ranges() {
    let mut rng = XorShift64::new(0xDEF1_0008);
    for _ in 0..512 {
        let len = rng.range_u32(MIN_MATCH, MAX_MATCH);
        let dist = rng.range_u32(1, 32_768);
        let l = length_symbol(len);
        assert!((257..=285).contains(&l.symbol));
        let base = lzfpga_deflate::fixed::length_base(l.symbol).unwrap();
        assert_eq!(base.0 + l.extra_val, len);
        assert!(l.extra_val < (1 << l.extra_bits) || l.extra_bits == 0);
        let d = distance_symbol(dist);
        assert!(d.symbol < 30);
        let base = lzfpga_deflate::fixed::distance_base(d.symbol).unwrap();
        assert_eq!(base.0 + d.extra_val, dist);
    }
}
