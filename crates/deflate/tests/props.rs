//! Property tests over the format layer: bit I/O, canonical Huffman
//! construction, token codecs and whole-block encode/decode, under
//! proptest-generated adversarial inputs.

use lzfpga_deflate::adler32::{adler32, Adler32};
use lzfpga_deflate::bitio::{BitReader, BitWriter};
use lzfpga_deflate::crc32::{crc32, Crc32};
use lzfpga_deflate::encoder::{BlockKind, DeflateEncoder};
use lzfpga_deflate::fixed::{distance_symbol, length_symbol, MAX_MATCH, MIN_MATCH};
use lzfpga_deflate::huffman::{build_lengths, canonical_codes, Codebook, Decoder};
use lzfpga_deflate::inflate::inflate;
use lzfpga_deflate::token::Token;
use proptest::prelude::*;

/// Random bit-field sequences: (value, width) with value < 2^width.
fn bit_fields() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec(
        (1u32..=57).prop_flat_map(|w| {
            let max = if w == 57 { u64::MAX >> 7 } else { (1u64 << w) - 1 };
            (0..=max, Just(w))
        }),
        0..200,
    )
}

/// A structurally valid token stream (matches never reach before start).
fn token_streams() -> impl Strategy<Value = Vec<Token>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Token::Literal),
            (MIN_MATCH..=MAX_MATCH, 1u32..=600).prop_map(|(len, dist)| Token::Match { dist, len }),
        ],
        0..300,
    )
    .prop_map(|raw| {
        // Legalise: matches may only reach into already-produced output.
        let mut produced = 0u32;
        let mut out = Vec::with_capacity(raw.len());
        for t in raw {
            match t {
                Token::Literal(_) => {
                    out.push(t);
                    produced += 1;
                }
                Token::Match { dist, len } => {
                    if produced == 0 {
                        out.push(Token::Literal(0x55));
                        produced += 1;
                    }
                    let dist = dist.min(produced);
                    out.push(Token::Match { dist, len });
                    produced += len;
                }
            }
        }
        out
    })
}

fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                for _ in 0..len {
                    let b = out[out.len() - dist as usize];
                    out.push(b);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bitio_round_trips(fields in bit_fields()) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            prop_assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free(freqs in proptest::collection::vec(0u64..1000, 2..60)) {
        let lengths = build_lengths(&freqs, 15);
        // Kraft inequality.
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        prop_assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
        // Every symbol with nonzero frequency got a code.
        for (i, &f) in freqs.iter().enumerate() {
            if f > 0 {
                prop_assert!(lengths[i] > 0, "symbol {i} lost its code");
            }
        }
        // Canonical codes of equal length are distinct and ordered.
        let codes = canonical_codes(&lengths);
        for i in 0..lengths.len() {
            for j in (i + 1)..lengths.len() {
                if lengths[i] != 0 && lengths[i] == lengths[j] {
                    prop_assert_ne!(codes[i], codes[j]);
                }
            }
        }
    }

    #[test]
    fn huffman_encode_decode_inverts(freqs in proptest::collection::vec(0u64..1000, 2..60)) {
        let mut freqs = freqs;
        // Ensure at least two used symbols so a real tree exists.
        freqs[0] += 1;
        let last = freqs.len() - 1;
        freqs[last] += 1;
        let lengths = build_lengths(&freqs, 15);
        let book = Codebook::from_lengths(&lengths);
        let decoder = Decoder::from_lengths(&lengths).expect("valid lengths");
        let symbols: Vec<usize> =
            freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(i, _)| i).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(decoder.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn token_dl_pairs_round_trip(tokens in token_streams()) {
        for t in &tokens {
            let (d, l) = t.to_dl_pair();
            prop_assert_eq!(&Token::from_dl_pair(d, l), t);
        }
    }

    #[test]
    fn fixed_and_dynamic_blocks_inflate(tokens in token_streams()) {
        let expected = expand(&tokens);
        for kind in [BlockKind::FixedHuffman, BlockKind::DynamicHuffman] {
            let mut enc = DeflateEncoder::new();
            enc.write_block(&tokens, kind, true);
            let stream = enc.finish();
            prop_assert_eq!(&inflate(&stream).unwrap(), &expected, "{:?}", kind);
        }
    }

    #[test]
    fn multi_block_streams_inflate(tokens in token_streams(), split in 0usize..300) {
        let expected = expand(&tokens);
        let cut = split.min(tokens.len());
        let mut enc = DeflateEncoder::new();
        enc.write_block(&tokens[..cut], BlockKind::FixedHuffman, false);
        enc.sync_flush();
        enc.write_block(&tokens[cut..], BlockKind::DynamicHuffman, true);
        prop_assert_eq!(inflate(&enc.finish()).unwrap(), expected);
    }

    #[test]
    fn checksums_are_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..5000),
                                        cut in 0usize..5000) {
        let cut = cut.min(data.len());
        let mut a = Adler32::new();
        a.update(&data[..cut]);
        a.update(&data[cut..]);
        prop_assert_eq!(a.finish(), adler32(&data));
        let mut c = Crc32::new();
        c.update(&data[..cut]);
        c.update(&data[cut..]);
        prop_assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn length_and_distance_symbols_cover_their_ranges(len in MIN_MATCH..=MAX_MATCH,
                                                      dist in 1u32..=32_768) {
        let l = length_symbol(len);
        prop_assert!((257..=285).contains(&l.symbol));
        let base = lzfpga_deflate::fixed::length_base(l.symbol).unwrap();
        prop_assert_eq!(base.0 + l.extra_val, len);
        prop_assert!(l.extra_val < (1 << l.extra_bits) || l.extra_bits == 0);
        let d = distance_symbol(dist);
        prop_assert!(d.symbol < 30);
        let base = lzfpga_deflate::fixed::distance_base(d.symbol).unwrap();
        prop_assert_eq!(base.0 + d.extra_val, dist);
    }
}
