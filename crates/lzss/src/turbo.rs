//! Turbo software fast path: the reference algorithm with a word-at-a-time
//! match kernel and zero-allocation engine reuse.
//!
//! [`mod@crate::reference`] optimises for being *obviously* the zlib
//! algorithm — byte loops, fresh tables per call, a probe on every
//! operation. This module is the same decision procedure made fast:
//!
//! * **Word-at-a-time matching.** Where the hardware compares a full
//!   dictionary bus word per cycle (§IV of the paper; see `compare_cycles`
//!   in `lzfpga-core`), the software kernel loads 8 bytes per step as a
//!   little-endian `u64`, XORs candidate against cursor, and finds the first
//!   mismatching byte with `trailing_zeros() / 8` — one branch per 8 bytes
//!   instead of one per byte.
//! * **Arena reuse.** A [`TurboEngine`] owns its head/next tables and hands
//!   them to every call: compressing a stream of chunks allocates nothing
//!   after the first chunk (reset is a `fill(0)`, preserving the hardware's
//!   BRAM power-up-to-zero semantics).
//! * **Sink output.** Tokens stream into a
//!   [`TokenSink`](lzfpga_deflate::sink::TokenSink), so callers can buffer,
//!   count, or encode without an intermediate `Vec` when they don't need
//!   one.
//!
//! The output is **token-for-token identical** to [`crate::compress`] for
//! every parameter set — greedy and lazy — which transitively makes it
//! identical to the cycle-accurate hardware model. The tests here and the
//! workspace-level `turbo_equivalence` suite enforce that.
//!
//! **Observability.** Every hot loop is generic over
//! [`MatchProbe`](lzfpga_telemetry::MatchProbe): the plain entry points use
//! [`NoProbe`](lzfpga_telemetry::NoProbe) (whose callbacks monomorphize
//! away — zero cost, byte-identical output), while
//! [`TurboEngine::compress_into_probed`] records hash-chain inserts, probe
//! counts, kernel runs, chain-walk-length histograms and the match/literal
//! mix into any probe — [`lzfpga_telemetry::TurboCounters`] being the one
//! the `--metrics` report uses. Probes observe; they never influence a
//! decision.

// The only `unsafe` here is the `#[target_feature]` matcher wrappers below
// `longest_match`; their CPU-support precondition is carried by the
// proof-carrying `MatchKernel` value (see `crate::simd`).
#![allow(unsafe_code)]

use crate::hash::HASH_BYTES;
use crate::params::{LevelTuning, LzssParams};
use crate::reference::max_distance;
use crate::simd::{Compare, Isa, MatchKernel, ScalarCmp};
use lzfpga_deflate::fixed::{MAX_MATCH, MIN_MATCH};
use lzfpga_deflate::sink::TokenSink;
use lzfpga_deflate::token::Token;
use lzfpga_faults::{Failpoints, InjectedFault};
use lzfpga_telemetry::{MatchProbe, NoProbe};

/// Same threshold as the reference lazy path (zlib's `TOO_FAR`).
pub(crate) const TOO_FAR: u32 = 4_096;

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `limit`, compared a register at a time on the widest kernel the host
/// supports (see [`crate::simd`]); the scalar 8-byte path is the guaranteed
/// fallback and every path returns identical lengths.
///
/// Caller guarantees `a < b` and `b + limit <= data.len()` (the reference
/// compressor's `limit = MAX_MATCH.min(len - pos)` invariant), so every
/// vector load is in bounds for both cursors.
#[inline]
pub fn match_length_fast(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
    MatchKernel::detect().match_length(data, a, b, limit)
}

/// Per-run search geometry, hoisted out of the hot loop.
#[derive(Clone, Copy)]
pub(crate) struct Search {
    /// Largest emittable distance (`max_distance(window_size)`).
    pub(crate) max_dist: u32,
    /// Stop searching once a match of this length is found.
    pub(crate) nice: u32,
}

/// zlib `INSERT_STRING`: file `pos` under `h`, return the old head.
///
/// `head` and `prev` must be exactly the live regions (`1 << hash_bits` and
/// `window_size` entries) so the mask-derived-from-length indexing below is
/// both correct and bounds-check free. Positions are `u32` — half the table
/// footprint of the reference's `usize` entries, which matters because the
/// head table is hit at a random slot for every input position.
#[inline]
pub(crate) fn insert(head: &mut [u32], prev: &mut [u32], h: u32, pos: u32) -> u32 {
    let slot = h as usize & (head.len() - 1);
    let old = head[slot];
    prev[pos as usize & (prev.len() - 1)] = old;
    head[slot] = pos;
    old
}

/// Walk the chain from `cand` for the longest match against `data[pos..]`;
/// identical decisions to the reference `longest_match`. `prev` is the live
/// `window_size`-entry ring (its length is the index mask + 1). `C` selects
/// the compare ISA at compile time; every kernel returns identical lengths,
/// so the decisions here do not depend on it.
///
/// `#[inline(always)]`, monomorphized per [`Compare`] impl: the engines
/// dispatch on the ISA **once per compress call** (see
/// [`TurboEngine::compress_into_probed`]) and run a whole match loop
/// compiled inside the matching `#[target_feature]` context, so the vector
/// compare fuses into this walk. Any finer-grained boundary measurably
/// loses: an un-inlinable call per probe (dynamic
/// [`MatchKernel::match_length`]) or even per position rivals the cost of
/// the short compares that dominate real corpora.
#[inline(always)]
pub(crate) fn longest_match<P: MatchProbe, C: Compare>(
    data: &[u8],
    pos: usize,
    mut cand: u32,
    prev: &[u32],
    search: Search,
    mut chain_budget: u32,
    probe: &mut P,
) -> (u32, u32) {
    let Search { max_dist, nice } = search;
    let wmask = prev.len() - 1;
    let limit = MAX_MATCH.min((data.len() - pos) as u32);
    let nice = nice.min(limit);
    let mut best_len = 0u32;
    let mut best_dist = 0u32;
    let mut steps = 0u32;
    // zlib's `scan_end` register: the byte a candidate must reproduce at
    // offset `best_len` to have any chance of beating the current best.
    let mut scan_end = data[pos];
    while chain_budget > 0 {
        if cand as usize >= pos {
            break;
        }
        let dist = (pos - cand as usize) as u32;
        if dist > max_dist {
            break;
        }
        steps += 1;
        // Quick reject (zlib's probe): a candidate can only beat `best_len`
        // if it also matches at offset `best_len`, so one byte compare skips
        // most full kernel runs without changing which matches are found.
        // `best_len < limit` holds here — a best of `limit >= nice` would
        // have exited at its update below — so both probes are in bounds.
        if data[cand as usize + best_len as usize] == scan_end {
            // SAFETY: `C`'s ISA support is the enclosing wrapper's
            // precondition, discharged by `longest_match`'s dispatch; the
            // compare contract (`cand < pos`, `pos + limit <= data.len()`)
            // is the reference compressor's invariant restated above.
            let len = unsafe { C::len(data, cand as usize, pos, limit) };
            probe.kernel_run(len);
            if len > best_len {
                best_len = len;
                best_dist = dist;
                if len >= nice {
                    break;
                }
                scan_end = data[pos + len as usize];
            }
        }
        let nxt = prev[cand as usize & wmask];
        if nxt < cand {
            cand = nxt;
        } else {
            break;
        }
        chain_budget -= 1;
    }
    probe.chain_done(steps);
    (best_len, best_dist)
}

/// zlib's bulk `INSERT_STRING` run for the covered positions `from..to`
/// of a match: hashes are computed four lanes at a time ([`crate::hash::HashFn::hash4_at`])
/// so the serial hash→insert dependency of one position overlaps the next
/// three. Insert order and values are identical to the one-at-a-time loop,
/// which keeps the token stream identical. Positions past `n - HASH_BYTES`
/// are skipped exactly as before.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn insert_run<P: MatchProbe>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    from: usize,
    to: usize,
    n: usize,
    probe: &mut P,
) {
    let mut k = from;
    let mut filed = 0u32;
    // 4-wide while the group fits the run and `hash4_at`'s 7-byte window
    // fits the input (`k + 7 <= n` also guarantees every lane has its 3
    // hash bytes).
    while k + 4 <= to && k + 7 <= n {
        let hs = hash.hash4_at(data, k);
        for (j, hk) in hs.into_iter().enumerate() {
            insert(head, prev, hk, (k + j) as u32);
        }
        filed += 4;
        k += 4;
    }
    while k < to {
        if k + HASH_BYTES <= n {
            insert(head, prev, hash.hash_at(data, k), k as u32);
            filed += 1;
        }
        k += 1;
    }
    probe.inserted_n(filed);
}

/// A reusable LZSS compression engine: the reference algorithm with
/// persistent head/next arenas and the word-at-a-time kernel.
///
/// Construction is cheap; tables are grown lazily to the largest geometry
/// seen and zero-filled (not reallocated) between inputs.
#[derive(Debug, Default)]
pub struct TurboEngine {
    /// Head table arena; the live region is `1 << hash_bits` entries.
    head: Vec<u32>,
    /// Next (chained previous-position) arena; live region is `window_size`.
    prev: Vec<u32>,
    /// Match-compare ISA path; defaults to the widest the host supports.
    kernel: MatchKernel,
}

impl TurboEngine {
    /// A fresh engine with empty arenas and the auto-detected match kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh engine pinned to `kernel` (the differential tests and the
    /// benchmark's pre-SIMD baseline use this to force the scalar path).
    pub fn with_kernel(kernel: MatchKernel) -> Self {
        Self { kernel, ..Self::default() }
    }

    /// Re-pin the match kernel; takes effect on the next compress call.
    pub fn set_kernel(&mut self, kernel: MatchKernel) {
        self.kernel = kernel;
    }

    /// The ISA path this engine's matches run on.
    pub fn kernel(&self) -> MatchKernel {
        self.kernel
    }

    /// Zero the live table regions for `params`, growing the arenas if this
    /// geometry is larger than anything seen before.
    fn reset(&mut self, params: &LzssParams) {
        let head_len = 1usize << params.hash_bits;
        let prev_len = params.window_size as usize;
        if self.head.len() < head_len {
            self.head.resize(head_len, 0);
        }
        if self.prev.len() < prev_len {
            self.prev.resize(prev_len, 0);
        }
        self.head[..head_len].fill(0);
        self.prev[..prev_len].fill(0);
    }

    /// Compress `data`, streaming tokens into `sink`. Token-for-token
    /// identical to [`crate::compress`] with the same `params`.
    pub fn compress_into<S: TokenSink>(&mut self, data: &[u8], params: &LzssParams, sink: &mut S) {
        self.compress_into_probed(data, params, sink, &mut NoProbe);
    }

    /// [`Self::compress_into`] with telemetry: dynamic match-loop events are
    /// reported to `probe` (e.g. [`lzfpga_telemetry::TurboCounters`]).
    /// The token stream is identical to the unprobed call — probes observe,
    /// never steer.
    pub fn compress_into_probed<S: TokenSink, P: MatchProbe>(
        &mut self,
        data: &[u8],
        params: &LzssParams,
        sink: &mut S,
        probe: &mut P,
    ) {
        params.validate();
        assert!(data.len() <= u32::MAX as usize, "turbo inputs are limited to 4 GiB - 1");
        self.reset(params);
        probe.kernel_select(self.kernel.name());
        let tuning = params.effective_tuning();
        let search =
            Search { max_dist: max_distance(params.window_size), nice: tuning.nice_length };
        let hash = params.hash_fn;
        let kernel = self.kernel;
        let head = &mut self.head[..1usize << params.hash_bits];
        let prev = &mut self.prev[..params.window_size as usize];
        // One ISA dispatch per compress call: everything below it is
        // monomorphized over the compare kernel, so the per-probe compare
        // inlines into the match loop (see `crate::simd::Compare`).
        match kernel.isa() {
            Isa::Scalar => {
                run::<S, P, ScalarCmp>(data, head, prev, hash, search, tuning, sink, probe)
            }
            // SAFETY (all three arms): a `MatchKernel` carrying a vector ISA
            // is only constructible after the host feature probe confirmed
            // support — see `crate::simd`.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe { run_sse2(data, head, prev, hash, search, tuning, sink, probe) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { run_avx2(data, head, prev, hash, search, tuning, sink, probe) },
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => unsafe { run_neon(data, head, prev, hash, search, tuning, sink, probe) },
        }
    }

    /// Convenience wrapper buffering the tokens.
    pub fn compress(&mut self, data: &[u8], params: &LzssParams) -> Vec<Token> {
        let mut out = Vec::new();
        self.compress_into(data, params, &mut out);
        out
    }

    /// [`Self::compress_into`] with failpoints active: site
    /// `turbo.compress.enter` fires before any token is emitted, site
    /// `turbo.compress.exit` after the full stream was produced. On an
    /// injected error the sink may hold a partial (enter) or complete
    /// (exit) token stream — callers discard it. Panic-action failpoints
    /// unwind from here, exercising the caller's isolation; the engine
    /// itself stays reusable because every compress call re-zeroes its
    /// arenas.
    pub fn compress_into_faulty<S: TokenSink, F: Failpoints>(
        &mut self,
        data: &[u8],
        params: &LzssParams,
        sink: &mut S,
        faults: &F,
    ) -> Result<(), InjectedFault> {
        if faults.check("turbo.compress.enter") {
            return Err(InjectedFault { site: "turbo.compress.enter" });
        }
        self.compress_into(data, params, sink);
        if faults.check("turbo.compress.exit") {
            return Err(InjectedFault { site: "turbo.compress.exit" });
        }
        Ok(())
    }
}

/// Greedy-or-lazy switch, monomorphized over the compare kernel. The
/// `#[target_feature]` wrappers below give each vector ISA a compilation
/// context this whole loop nest inlines into; the engines and the batch
/// driver dispatch to one of them exactly once per compress call.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run<S: TokenSink, P: MatchProbe, C: Compare>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    if tuning.lazy {
        run_lazy::<S, P, C>(data, head, prev, hash, search, tuning, sink, probe)
    } else {
        run_greedy::<S, P, C>(data, head, prev, hash, search, tuning, sink, probe)
    }
}

/// [`run`] under an SSE2-enabled compilation context.
///
/// # Safety
/// The host must support SSE2.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn run_sse2<S: TokenSink, P: MatchProbe>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    run::<S, P, crate::simd::Sse2Cmp>(data, head, prev, hash, search, tuning, sink, probe)
}

/// [`run`] under an AVX2-enabled compilation context.
///
/// # Safety
/// The host must support AVX2.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_avx2<S: TokenSink, P: MatchProbe>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    run::<S, P, crate::simd::Avx2Cmp>(data, head, prev, hash, search, tuning, sink, probe)
}

/// [`run`] under a NEON-enabled compilation context.
///
/// # Safety
/// The host must support NEON (the AArch64 baseline).
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn run_neon<S: TokenSink, P: MatchProbe>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    run::<S, P, crate::simd::NeonCmp>(data, head, prev, hash, search, tuning, sink, probe)
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_greedy<S: TokenSink, P: MatchProbe, C: Compare>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    let n = data.len();
    let mut pos = 0usize;
    // Literal and head-insert counts accumulate in registers and flush to
    // the probe at match boundaries: the counts are exactly the per-event
    // ones, but the callback rate drops from per-byte to per-match.
    let mut pend_lits = 0u32;
    let mut pend_inserts = 0u32;

    while pos < n {
        if n - pos < HASH_BYTES {
            sink.literal(data[pos]);
            pend_lits += 1;
            pos += 1;
            continue;
        }
        let h = hash.hash_at(data, pos);
        let cand = insert(head, prev, h, pos as u32);
        pend_inserts += 1;

        let (best_len, best_dist) =
            longest_match::<P, C>(data, pos, cand, prev, search, tuning.max_chain, probe);

        if best_len >= MIN_MATCH {
            sink.matched(best_dist, best_len);
            probe.literals_n(pend_lits);
            probe.inserted_n(pend_inserts);
            pend_lits = 0;
            pend_inserts = 0;
            probe.matched(best_len);
            if best_len <= tuning.max_lazy {
                insert_run(data, head, prev, hash, pos + 1, pos + best_len as usize, n, probe);
            }
            pos += best_len as usize;
        } else {
            sink.literal(data[pos]);
            pend_lits += 1;
            pos += 1;
        }
    }
    probe.literals_n(pend_lits);
    probe.inserted_n(pend_inserts);
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn run_lazy<S: TokenSink, P: MatchProbe, C: Compare>(
    data: &[u8],
    head: &mut [u32],
    prev: &mut [u32],
    hash: crate::hash::HashFn,
    search: Search,
    tuning: LevelTuning,
    sink: &mut S,
    probe: &mut P,
) {
    let n = data.len();
    let mut pos = 0usize;

    let mut prev_len = 0u32;
    let mut prev_dist = 0u32;
    let mut have_prev_literal = false;
    // Register-accumulated event counts, flushed at match boundaries (see
    // `run_greedy`).
    let mut pend_lits = 0u32;
    let mut pend_inserts = 0u32;

    while pos < n {
        if n - pos < HASH_BYTES {
            if prev_len >= MIN_MATCH {
                sink.matched(prev_dist, prev_len);
                probe.literals_n(pend_lits);
                probe.inserted_n(pend_inserts);
                pend_lits = 0;
                pend_inserts = 0;
                probe.matched(prev_len);
                let skip = prev_len as usize - 1;
                prev_len = 0;
                have_prev_literal = false;
                pos += skip;
                continue;
            }
            if have_prev_literal {
                sink.literal(data[pos - 1]);
                pend_lits += 1;
                have_prev_literal = false;
            }
            sink.literal(data[pos]);
            pend_lits += 1;
            pos += 1;
            continue;
        }

        let h = hash.hash_at(data, pos);
        let cand = insert(head, prev, h, pos as u32);
        pend_inserts += 1;

        let budget =
            if prev_len >= tuning.good_length { tuning.max_chain >> 2 } else { tuning.max_chain };
        let (mut cur_len, cur_dist) = if prev_len < tuning.max_lazy {
            longest_match::<P, C>(data, pos, cand, prev, search, budget.max(1), probe)
        } else {
            (0, 0)
        };
        if cur_len == MIN_MATCH && cur_dist > TOO_FAR {
            cur_len = 0;
        }

        if prev_len >= MIN_MATCH && cur_len <= prev_len {
            sink.matched(prev_dist, prev_len);
            probe.literals_n(pend_lits);
            probe.inserted_n(pend_inserts);
            pend_lits = 0;
            pend_inserts = 0;
            probe.matched(prev_len);
            insert_run(data, head, prev, hash, pos + 1, pos - 1 + prev_len as usize, n, probe);
            pos += prev_len as usize - 1;
            prev_len = 0;
            have_prev_literal = false;
        } else {
            if have_prev_literal {
                sink.literal(data[pos - 1]);
                pend_lits += 1;
            }
            prev_len = cur_len;
            prev_dist = cur_dist;
            have_prev_literal = true;
            pos += 1;
        }
    }
    if have_prev_literal {
        sink.literal(data[n - 1]);
        pend_lits += 1;
    }
    probe.literals_n(pend_lits);
    probe.inserted_n(pend_inserts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressionLevel;
    use crate::reference::compress as reference_compress;
    use lzfpga_sim::rng::XorShift64;

    /// Naive byte loop the fast kernel must agree with everywhere.
    fn match_length_slow(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        let max = limit as usize;
        let mut n = 0usize;
        while n < max && data[a + n] == data[b + n] {
            n += 1;
        }
        n as u32
    }

    #[test]
    fn fast_kernel_agrees_with_byte_loop() {
        let mut rng = XorShift64::new(41);
        // Low-entropy data so long common prefixes actually occur, plus
        // mismatches planted at every offset within a word.
        let mut data: Vec<u8> = (0..4_096).map(|_| b'a' + rng.next_u8() % 3).collect();
        for plant in 0..32 {
            data[1_000 + plant * 7] = b'z';
        }
        for _ in 0..5_000 {
            let b = 1 + rng.below_usize(data.len() - 1);
            let a = rng.below_usize(b);
            let limit = MAX_MATCH.min((data.len() - b) as u32);
            assert_eq!(
                match_length_fast(&data, a, b, limit),
                match_length_slow(&data, a, b, limit),
                "a={a} b={b} limit={limit}"
            );
        }
    }

    #[test]
    fn fast_kernel_handles_every_boundary_length() {
        // All prefix lengths 0..=40 across the 8-byte word boundaries.
        for agree in 0..=40usize {
            let mut data = vec![b'x'; 100 + agree];
            data[50 + agree] = b'!';
            let limit = MAX_MATCH.min((data.len() - 50) as u32);
            assert_eq!(match_length_fast(&data, 0, 50, limit), agree as u32);
        }
    }

    #[test]
    fn snowy_snow_finds_the_papers_match() {
        let tokens = TurboEngine::new().compress(b"snowy snow", &LzssParams::paper_fast());
        assert_eq!(tokens.len(), 7, "{tokens:?}");
        assert_eq!(tokens[6], Token::Match { dist: 6, len: 4 });
    }

    fn sample_corpora() -> Vec<Vec<u8>> {
        let mut rng = XorShift64::new(7);
        let mut random = vec![0u8; 20_000];
        rng.fill_bytes(&mut random);
        let mut lowent: Vec<u8> = (0..40_000).map(|_| b'a' + rng.next_u8() % 4).collect();
        lowent.extend_from_slice(&lowent.clone());
        vec![
            Vec::new(),
            b"a".to_vec(),
            b"snowy snow".to_vec(),
            vec![b'z'; 10_000],
            random,
            lowent,
            b"abcabcabcabc xyz abcabc xyz ".repeat(200),
        ]
    }

    #[test]
    fn token_identical_to_reference_all_levels() {
        let mut engine = TurboEngine::new();
        for data in sample_corpora() {
            for level in [CompressionLevel::Min, CompressionLevel::Medium, CompressionLevel::Max] {
                for (w, h) in [(1_024u32, 12u32), (4_096, 15), (32_768, 15)] {
                    let params = LzssParams::new(w, h, level);
                    let expect = reference_compress(&data, &params);
                    let got = engine.compress(&data, &params);
                    assert_eq!(got, expect, "len={} {params:?}", data.len());
                }
            }
        }
    }

    #[test]
    fn arena_reuse_does_not_leak_state_between_inputs() {
        let mut engine = TurboEngine::new();
        let params = LzssParams::paper_fast();
        let a = engine.compress(b"snowy snow", &params);
        // Compress something else (different geometry too), then repeat.
        let _ = engine
            .compress(&vec![7u8; 50_000], &LzssParams::new(32_768, 15, CompressionLevel::Max));
        let b = engine.compress(b"snowy snow", &params);
        assert_eq!(a, b);
        assert_eq!(a, TurboEngine::new().compress(b"snowy snow", &params));
    }

    #[test]
    fn probed_run_is_token_identical_and_counts_consistently() {
        let mut engine = TurboEngine::new();
        for data in sample_corpora() {
            for level in [CompressionLevel::Min, CompressionLevel::Medium, CompressionLevel::Max] {
                let params = LzssParams::new(4_096, 15, level);
                let plain = engine.compress(&data, &params);
                let mut probed = Vec::new();
                let mut counters = lzfpga_telemetry::TurboCounters::default();
                engine.compress_into_probed(&data, &params, &mut probed, &mut counters);
                assert_eq!(probed, plain, "len={} {level:?}", data.len());
                // Every input byte is covered by exactly one token.
                assert_eq!(counters.covered_bytes(), data.len() as u64, "{level:?}");
                assert_eq!(counters.literals + counters.matches, plain.len() as u64);
                assert_eq!(counters.match_len_hist.count(), counters.matches);
                assert_eq!(counters.match_len_hist.sum(), counters.match_bytes);
                // A kernel run needs a probe first; a probe needs a search.
                assert!(counters.probes >= counters.kernel_runs);
                assert!(counters.probes >= counters.chain_hist.sum());
                assert_eq!(counters.chain_hist.sum(), counters.probes);
            }
        }
    }

    #[test]
    fn counting_sink_sees_full_coverage() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let mut engine = TurboEngine::new();
        let mut counts = lzfpga_deflate::sink::CountingSink::default();
        engine.compress_into(&data, &LzssParams::paper_fast(), &mut counts);
        assert_eq!(counts.expanded_bytes, data.len() as u64);
        assert!(counts.matches > 0);
    }

    #[test]
    fn faulty_path_injects_and_then_recovers() {
        use lzfpga_faults::{FailPlan, FailRule, NoFaults};
        let data = b"inject into the turbo engine ".repeat(50);
        let params = LzssParams::paper_fast();
        let mut engine = TurboEngine::new();

        let plan = FailPlan::new(1).rule(FailRule::new("turbo.compress.enter"));
        let mut sink: Vec<Token> = Vec::new();
        let err = engine.compress_into_faulty(&data, &params, &mut sink, &plan).unwrap_err();
        assert_eq!(err.site, "turbo.compress.enter");
        assert!(sink.is_empty(), "enter fault fires before any token");

        // Same engine, exhausted plan: output matches the plain path.
        let mut faulty: Vec<Token> = Vec::new();
        engine.compress_into_faulty(&data, &params, &mut faulty, &plan).unwrap();
        let mut plain: Vec<Token> = Vec::new();
        engine.compress_into(&data, &params, &mut plain);
        assert_eq!(faulty, plain);

        // Exit faults leave a complete stream behind (which callers drop).
        let plan = FailPlan::new(1).rule(FailRule::new("turbo.compress.exit"));
        let mut sink: Vec<Token> = Vec::new();
        let err = engine.compress_into_faulty(&data, &params, &mut sink, &plan).unwrap_err();
        assert_eq!(err.site, "turbo.compress.exit");
        assert_eq!(sink, plain);

        // Panic-action plans unwind; the engine stays usable afterwards.
        let plan = FailPlan::new(1).rule(FailRule::new("turbo.compress.enter").panics());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink: Vec<Token> = Vec::new();
            let _ = engine.compress_into_faulty(&data, &params, &mut sink, &plan);
        }));
        assert!(caught.is_err());
        let mut after: Vec<Token> = Vec::new();
        engine.compress_into_faulty(&data, &params, &mut after, &NoFaults).unwrap();
        assert_eq!(after, plain);
    }
}
