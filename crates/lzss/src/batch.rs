//! Multi-lane batched compression: N independent streams interleaved
//! through one kernel invocation loop.
//!
//! A single compress run is a long serial dependency chain — hash, probe
//! the head table, walk the chain, run the compare kernel, insert — and
//! most steps stall on a cache or BRAM-analogue table miss before the next
//! can issue. The LZ4 accelerator of Chen et al. (PAPERS.md) hides that
//! latency in hardware by interleaving independent streams through one
//! datapath; this module is the software form of the same trick. A
//! [`BatchEngine`] owns one set of per-lane head/next arenas and advances
//! every live lane a fixed stride of token decisions per round, so the
//! misses of lane *i* overlap the useful work of lanes *i+1..N* instead of
//! serializing behind it.
//!
//! **The contract is strict token identity per lane**: each lane executes
//! exactly the decision procedure of [`crate::turbo::TurboEngine`] (greedy
//! and lazy), with its own dictionary state, so `compress_batch(inputs)[i]`
//! equals `TurboEngine::compress(inputs[i])` token for token at every
//! level. The in-module tests and `tests/batch_equivalence.rs` enforce it.
//! Lane count, stride, and scheduling order are therefore pure performance
//! knobs — they can never change output bytes.
//!
//! **Observability.** The probed entry point reports the chosen ISA path
//! once per batch and the live-lane count once per round
//! ([`lzfpga_telemetry::MatchProbe::lanes_active`]), which is what the
//! `--metrics` lane-occupancy histogram is built from.

// The only `unsafe` here is the `#[target_feature]` driver wrappers below
// `compress_batch_probed`; their CPU-support precondition is carried by the
// proof-carrying `MatchKernel` value (see `crate::simd`).
#![allow(unsafe_code)]

use crate::hash::{HashFn, HASH_BYTES};
use crate::params::{LevelTuning, LzssParams};
use crate::reference::max_distance;
use crate::simd::{Compare, Isa, MatchKernel, ScalarCmp};
use crate::turbo::{insert, insert_run, longest_match, Search, TOO_FAR};
use lzfpga_deflate::fixed::{MAX_MATCH, MIN_MATCH};
use lzfpga_deflate::sink::TokenSink;
use lzfpga_deflate::token::Token;
use lzfpga_telemetry::{MatchProbe, NoProbe};

/// Token decisions each live lane advances per round-robin turn. Large
/// enough to amortize the lane switch, small enough that a batch of short
/// streams still interleaves (rather than degenerating to serial runs).
const LANE_STRIDE: usize = 32;

/// Per-lane dictionary arenas, reused across batches exactly like
/// [`crate::turbo::TurboEngine`]'s (reset is a `fill(0)`).
#[derive(Debug, Default)]
struct LaneTables {
    head: Vec<u32>,
    prev: Vec<u32>,
}

impl LaneTables {
    fn reset(&mut self, params: &LzssParams) {
        let head_len = 1usize << params.hash_bits;
        let prev_len = params.window_size as usize;
        if self.head.len() < head_len {
            self.head.resize(head_len, 0);
        }
        if self.prev.len() < prev_len {
            self.prev.resize(prev_len, 0);
        }
        self.head[..head_len].fill(0);
        self.prev[..prev_len].fill(0);
    }
}

/// The resumable per-lane cursor: everything `TurboEngine::run_greedy` /
/// `run_lazy` keep in locals across one `while` iteration.
#[derive(Debug, Clone, Copy)]
struct LaneRun {
    pos: usize,
    prev_len: u32,
    prev_dist: u32,
    have_prev_literal: bool,
    done: bool,
}

/// Geometry shared by every lane of a batch, hoisted out of the step loop.
/// The compare ISA is not part of it — that is a compile-time parameter of
/// the monomorphized driver (see [`Compare`]).
#[derive(Clone, Copy)]
struct BatchGeometry {
    hash: HashFn,
    search: Search,
    tuning: LevelTuning,
}

/// A reusable multi-lane compression engine: per-lane arenas plus the lane
/// scheduler. Construction is cheap; arenas grow lazily to the largest
/// (lane count × geometry) seen.
#[derive(Debug, Default)]
pub struct BatchEngine {
    lanes: Vec<LaneTables>,
    kernel: MatchKernel,
}

impl BatchEngine {
    /// A fresh engine with no lanes allocated and the auto-detected kernel.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh engine pinned to `kernel`.
    pub fn with_kernel(kernel: MatchKernel) -> Self {
        Self { kernel, ..Self::default() }
    }

    /// Re-pin the match kernel; takes effect on the next batch.
    pub fn set_kernel(&mut self, kernel: MatchKernel) {
        self.kernel = kernel;
    }

    /// The ISA path this engine's matches run on.
    pub fn kernel(&self) -> MatchKernel {
        self.kernel
    }

    /// Compress every input as an independent stream, interleaved through
    /// one kernel loop. `out[i]` is token-for-token identical to
    /// [`crate::turbo::TurboEngine::compress`] of `inputs[i]`.
    pub fn compress_batch(&mut self, inputs: &[&[u8]], params: &LzssParams) -> Vec<Vec<Token>> {
        self.compress_batch_probed(inputs, params, &mut NoProbe)
    }

    /// [`Self::compress_batch`] with telemetry: kernel dispatch, match-loop
    /// counters and per-round lane occupancy are reported to `probe`. The
    /// token streams are identical to the unprobed call.
    pub fn compress_batch_probed<P: MatchProbe>(
        &mut self,
        inputs: &[&[u8]],
        params: &LzssParams,
        probe: &mut P,
    ) -> Vec<Vec<Token>> {
        params.validate();
        if inputs.is_empty() {
            return Vec::new();
        }
        for data in inputs {
            assert!(data.len() <= u32::MAX as usize, "batch lanes are limited to 4 GiB - 1");
        }
        probe.kernel_select(self.kernel.name());
        while self.lanes.len() < inputs.len() {
            self.lanes.push(LaneTables::default());
        }
        let geom = BatchGeometry {
            hash: params.hash_fn,
            search: Search {
                max_dist: max_distance(params.window_size),
                nice: params.effective_tuning().nice_length,
            },
            tuning: params.effective_tuning(),
        };
        let mut runs: Vec<LaneRun> = inputs
            .iter()
            .map(|data| LaneRun {
                pos: 0,
                prev_len: 0,
                prev_dist: 0,
                have_prev_literal: false,
                done: data.is_empty(),
            })
            .collect();
        let mut outs: Vec<Vec<Token>> = inputs.iter().map(|_| Vec::new()).collect();
        for tables in self.lanes.iter_mut().take(inputs.len()) {
            tables.reset(params);
        }

        // One ISA dispatch per batch: the whole round-robin driver (and the
        // step loops inside it) is monomorphized over the compare kernel,
        // exactly like `TurboEngine`'s per-call dispatch.
        match self.kernel.isa() {
            Isa::Scalar => drive::<P, ScalarCmp>(
                inputs,
                &mut self.lanes,
                &mut runs,
                &mut outs,
                geom,
                params,
                probe,
            ),
            // SAFETY (all three arms): a `MatchKernel` carrying a vector ISA
            // is only constructible after the host feature probe confirmed
            // support — see `crate::simd`.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe {
                drive_sse2(inputs, &mut self.lanes, &mut runs, &mut outs, geom, params, probe)
            },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe {
                drive_avx2(inputs, &mut self.lanes, &mut runs, &mut outs, geom, params, probe)
            },
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => unsafe {
                drive_neon(inputs, &mut self.lanes, &mut runs, &mut outs, geom, params, probe)
            },
        }
        outs
    }
}

/// The round-robin lane driver, monomorphized over the compare kernel.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn drive<P: MatchProbe, C: Compare>(
    inputs: &[&[u8]],
    lanes: &mut [LaneTables],
    runs: &mut [LaneRun],
    outs: &mut [Vec<Token>],
    geom: BatchGeometry,
    params: &LzssParams,
    probe: &mut P,
) {
    loop {
        let live = runs.iter().filter(|r| !r.done).count() as u32;
        if live == 0 {
            break;
        }
        probe.lanes_active(live);
        for lane in 0..inputs.len() {
            if runs[lane].done {
                continue;
            }
            let tables = &mut lanes[lane];
            let head = &mut tables.head[..1usize << params.hash_bits];
            let prev = &mut tables.prev[..params.window_size as usize];
            let (data, run, out) = (inputs[lane], &mut runs[lane], &mut outs[lane]);
            for _ in 0..LANE_STRIDE {
                if run.done {
                    break;
                }
                if geom.tuning.lazy {
                    step_lazy::<P, C>(data, run, head, prev, geom, out, probe);
                } else {
                    step_greedy::<P, C>(data, run, head, prev, geom, out, probe);
                }
            }
        }
    }
}

/// [`drive`] under an SSE2-enabled compilation context.
///
/// # Safety
/// The host must support SSE2.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn drive_sse2<P: MatchProbe>(
    inputs: &[&[u8]],
    lanes: &mut [LaneTables],
    runs: &mut [LaneRun],
    outs: &mut [Vec<Token>],
    geom: BatchGeometry,
    params: &LzssParams,
    probe: &mut P,
) {
    drive::<P, crate::simd::Sse2Cmp>(inputs, lanes, runs, outs, geom, params, probe)
}

/// [`drive`] under an AVX2-enabled compilation context.
///
/// # Safety
/// The host must support AVX2.
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn drive_avx2<P: MatchProbe>(
    inputs: &[&[u8]],
    lanes: &mut [LaneTables],
    runs: &mut [LaneRun],
    outs: &mut [Vec<Token>],
    geom: BatchGeometry,
    params: &LzssParams,
    probe: &mut P,
) {
    drive::<P, crate::simd::Avx2Cmp>(inputs, lanes, runs, outs, geom, params, probe)
}

/// [`drive`] under a NEON-enabled compilation context.
///
/// # Safety
/// The host must support NEON (the AArch64 baseline).
#[allow(clippy::too_many_arguments)]
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn drive_neon<P: MatchProbe>(
    inputs: &[&[u8]],
    lanes: &mut [LaneTables],
    runs: &mut [LaneRun],
    outs: &mut [Vec<Token>],
    geom: BatchGeometry,
    params: &LzssParams,
    probe: &mut P,
) {
    drive::<P, crate::simd::NeonCmp>(inputs, lanes, runs, outs, geom, params, probe)
}

/// One iteration of the greedy `while pos < n` loop from
/// `TurboEngine::run_greedy`, with the cursor lifted into [`LaneRun`].
#[inline(always)]
fn step_greedy<P: MatchProbe, C: Compare>(
    data: &[u8],
    run: &mut LaneRun,
    head: &mut [u32],
    prev: &mut [u32],
    geom: BatchGeometry,
    out: &mut Vec<Token>,
    probe: &mut P,
) {
    let n = data.len();
    let pos = run.pos;
    if pos >= n {
        run.done = true;
        return;
    }
    if n - pos < HASH_BYTES {
        out.literal(data[pos]);
        probe.literal();
        run.pos = pos + 1;
        return;
    }
    let h = geom.hash.hash_at(data, pos);
    let cand = insert(head, prev, h, pos as u32);
    probe.inserted();

    let (best_len, best_dist) =
        longest_match::<P, C>(data, pos, cand, prev, geom.search, geom.tuning.max_chain, probe);

    if best_len >= MIN_MATCH {
        out.matched(best_dist, best_len);
        probe.matched(best_len);
        if best_len <= geom.tuning.max_lazy {
            insert_run(data, head, prev, geom.hash, pos + 1, pos + best_len as usize, n, probe);
        }
        run.pos = pos + best_len as usize;
    } else {
        out.literal(data[pos]);
        probe.literal();
        run.pos = pos + 1;
    }
}

/// One iteration of the lazy loop from `TurboEngine::run_lazy`, including
/// the post-loop trailing-literal flush (folded into the `pos >= n` arm).
#[inline(always)]
fn step_lazy<P: MatchProbe, C: Compare>(
    data: &[u8],
    run: &mut LaneRun,
    head: &mut [u32],
    prev: &mut [u32],
    geom: BatchGeometry,
    out: &mut Vec<Token>,
    probe: &mut P,
) {
    let n = data.len();
    let pos = run.pos;
    if pos >= n {
        if run.have_prev_literal {
            out.literal(data[n - 1]);
            probe.literal();
            run.have_prev_literal = false;
        }
        run.done = true;
        return;
    }
    if n - pos < HASH_BYTES {
        if run.prev_len >= MIN_MATCH {
            out.matched(run.prev_dist, run.prev_len);
            probe.matched(run.prev_len);
            run.pos = pos + run.prev_len as usize - 1;
            run.prev_len = 0;
            run.have_prev_literal = false;
            return;
        }
        if run.have_prev_literal {
            out.literal(data[pos - 1]);
            probe.literal();
            run.have_prev_literal = false;
        }
        out.literal(data[pos]);
        probe.literal();
        run.pos = pos + 1;
        return;
    }

    let h = geom.hash.hash_at(data, pos);
    let cand = insert(head, prev, h, pos as u32);
    probe.inserted();

    let budget = if run.prev_len >= geom.tuning.good_length {
        geom.tuning.max_chain >> 2
    } else {
        geom.tuning.max_chain
    };
    let (mut cur_len, cur_dist) = if run.prev_len < geom.tuning.max_lazy {
        longest_match::<P, C>(data, pos, cand, prev, geom.search, budget.max(1), probe)
    } else {
        (0, 0)
    };
    if cur_len == MIN_MATCH && cur_dist > TOO_FAR {
        cur_len = 0;
    }

    if run.prev_len >= MIN_MATCH && cur_len <= run.prev_len {
        out.matched(run.prev_dist, run.prev_len);
        probe.matched(run.prev_len);
        insert_run(data, head, prev, geom.hash, pos + 1, pos - 1 + run.prev_len as usize, n, probe);
        run.pos = pos + run.prev_len as usize - 1;
        run.prev_len = 0;
        run.have_prev_literal = false;
    } else {
        if run.have_prev_literal {
            out.literal(data[pos - 1]);
            probe.literal();
        }
        run.prev_len = cur_len;
        run.prev_dist = cur_dist;
        run.have_prev_literal = true;
        run.pos = pos + 1;
    }
}

/// `MAX_MATCH` re-exported for the lane-sizing heuristics in `parallel`
/// (kept here so the batch API is self-contained).
pub const LANE_MAX_MATCH: u32 = MAX_MATCH;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CompressionLevel;
    use crate::turbo::TurboEngine;
    use lzfpga_sim::rng::XorShift64;
    use lzfpga_telemetry::TurboCounters;

    fn sample_inputs() -> Vec<Vec<u8>> {
        let mut rng = XorShift64::new(77);
        let mut random = vec![0u8; 30_000];
        rng.fill_bytes(&mut random);
        let lowent: Vec<u8> = (0..50_000).map(|_| b'a' + rng.next_u8() % 4).collect();
        vec![
            Vec::new(),
            b"a".to_vec(),
            b"snowy snow".to_vec(),
            vec![b'z'; 12_000],
            random,
            lowent,
            b"abcabcabcabc xyz abcabc xyz ".repeat(300),
        ]
    }

    #[test]
    fn every_lane_is_token_identical_to_turbo_at_all_levels() {
        let inputs = sample_inputs();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let mut turbo = TurboEngine::new();
        let mut batch = BatchEngine::new();
        for level in [CompressionLevel::Min, CompressionLevel::Medium, CompressionLevel::Max] {
            for (w, h) in [(1_024u32, 12u32), (4_096, 15), (32_768, 15)] {
                let params = LzssParams::new(w, h, level);
                let outs = batch.compress_batch(&refs, &params);
                assert_eq!(outs.len(), refs.len());
                for (i, out) in outs.iter().enumerate() {
                    let expect = turbo.compress(refs[i], &params);
                    assert_eq!(out, &expect, "lane {i} {params:?}");
                }
            }
        }
    }

    #[test]
    fn lane_order_and_batch_shape_do_not_change_tokens() {
        let inputs = sample_inputs();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let params = LzssParams::paper_fast();
        let mut batch = BatchEngine::new();
        let together = batch.compress_batch(&refs, &params);
        // One lane at a time through the same (reused) engine.
        for (i, input) in refs.iter().enumerate() {
            let alone = batch.compress_batch(&[input], &params);
            assert_eq!(alone[0], together[i], "lane {i}");
        }
        // Reversed lane order.
        let reversed: Vec<&[u8]> = refs.iter().rev().copied().collect();
        let rev_outs = batch.compress_batch(&reversed, &params);
        for (i, out) in rev_outs.iter().enumerate() {
            assert_eq!(out, &together[refs.len() - 1 - i], "reversed lane {i}");
        }
    }

    #[test]
    fn arena_reuse_across_batches_does_not_leak_state() {
        let params = LzssParams::paper_fast();
        let mut batch = BatchEngine::new();
        let a = batch.compress_batch(&[b"snowy snow"], &params);
        let big = vec![7u8; 60_000];
        let _ = batch
            .compress_batch(&[&big, &big], &LzssParams::new(32_768, 15, CompressionLevel::Max));
        let b = batch.compress_batch(&[b"snowy snow"], &params);
        assert_eq!(a, b);
    }

    #[test]
    fn probed_batch_reports_occupancy_and_full_coverage() {
        let inputs = sample_inputs();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let params = LzssParams::paper_fast();
        let mut batch = BatchEngine::new();
        let plain = batch.compress_batch(&refs, &params);
        let mut counters = TurboCounters::default();
        let probed = batch.compress_batch_probed(&refs, &params, &mut counters);
        assert_eq!(probed, plain, "probes must never steer");
        let total: usize = refs.iter().map(|d| d.len()).sum();
        assert_eq!(counters.covered_bytes(), total as u64);
        assert_eq!(counters.dispatches(), 1, "one dispatch per batch");
        // Occupancy: starts at the number of non-empty lanes, decays to 1.
        let non_empty = refs.iter().filter(|d| !d.is_empty()).count() as u64;
        assert_eq!(counters.lane_occupancy.max(), non_empty);
        assert!(counters.lane_occupancy.count() > 0);
    }

    #[test]
    fn empty_batch_and_empty_lanes() {
        let params = LzssParams::paper_fast();
        let mut batch = BatchEngine::new();
        assert!(batch.compress_batch(&[], &params).is_empty());
        let outs = batch.compress_batch(&[&[][..], &[][..]], &params);
        assert_eq!(outs, vec![Vec::<Token>::new(), Vec::new()]);
    }

    #[test]
    fn forced_kernels_agree_lane_for_lane() {
        let inputs = sample_inputs();
        let refs: Vec<&[u8]> = inputs.iter().map(Vec::as_slice).collect();
        let params = LzssParams::new(4_096, 15, CompressionLevel::Medium);
        let mut scalar = BatchEngine::with_kernel(MatchKernel::scalar());
        let expect = scalar.compress_batch(&refs, &params);
        for kernel in MatchKernel::supported() {
            let mut engine = BatchEngine::with_kernel(kernel);
            assert_eq!(engine.compress_batch(&refs, &params), expect, "{kernel}");
        }
    }
}
