//! Vector match-length kernels and their runtime dispatcher.
//!
//! The paper widens the comparison datapath to the dictionary bus width so
//! the hardware compares several bytes per cycle (§IV); [`mod@crate::turbo`]
//! took that idea to word width (8 bytes per branch). This module takes it
//! to the host's vector width: 16-byte SSE2 and 32-byte AVX2 compares on
//! x86_64, 16-byte NEON compares on aarch64, all funnelled through one
//! [`MatchKernel`] value chosen once per engine.
//!
//! Every kernel computes exactly the same function — the length of the
//! common prefix of `data[a..]` and `data[b..]` capped at `limit` — so the
//! compressor's *decisions* (and therefore its token stream) are identical
//! no matter which ISA path runs. The differential suite in
//! `tests/simd_kernels.rs` and the in-module property tests enforce this on
//! random, adversarial and boundary-straddling inputs.
//!
//! # Dispatch strategy
//!
//! [`MatchKernel`] is an opaque copy type whose only constructors are
//! [`MatchKernel::detect`] (host feature probe, cached, overridable with
//! `LZFPGA_MATCH_KERNEL`), [`MatchKernel::scalar`] (the guaranteed
//! fallback), and [`MatchKernel::try_named`] (checked by the same probe).
//! Because an unsupported ISA value cannot be constructed, the `unsafe`
//! call into a `#[target_feature]` kernel below is sound by construction:
//! holding a `MatchKernel` for an ISA *is* the proof the host supports it.
//!
//! # Safety argument for the intrinsics blocks
//!
//! All kernels share one caller contract, inherited from
//! [`crate::turbo::match_length_fast`] and stated on [`MatchKernel::match_length`]:
//! `a < b` and `b + limit <= data.len()`. Every vector load below reads
//! `W` bytes at `p + n` where `p + n + W <= p + max <= data.len()` is
//! re-established by the loop condition (`n + W <= max`), so no load —
//! aligned or not, `a`-side or `b`-side — can touch memory outside `data`.
//! Overlapping windows (`b - a <` vector width) are fine: the kernels only
//! *read* and compare; nothing is copied shingle-style.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Crate-private ISA selector. Variants exist only on architectures where
/// the matching kernel compiles; the public wrapper cannot be built around
/// an unsupported one. `crate::turbo` matches on this to pick the
/// monomorphized matcher loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Isa {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// A validated match-kernel selection: the software analogue of the paper's
/// synthesis-time bus width choice, resolved at run time instead.
///
/// Values of this type are proof-carrying: the private constructors only
/// produce an ISA the running host supports, which is what makes
/// [`MatchKernel::match_length`] safe to call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchKernel(Isa);

/// Cached [`MatchKernel::detect`] result: 0 = not probed yet, else
/// `encode(isa) + 1`.
static DETECTED: AtomicU8 = AtomicU8::new(0);

impl MatchKernel {
    /// The guaranteed fallback: the word-at-a-time scalar kernel, available
    /// on every architecture.
    pub const fn scalar() -> Self {
        MatchKernel(Isa::Scalar)
    }

    /// The widest kernel the running host supports, probed once and cached.
    ///
    /// The environment variable `LZFPGA_MATCH_KERNEL` (values `scalar`,
    /// `sse2`, `avx2`, `neon`, `auto`) overrides the probe — the CI scalar
    /// job uses this to keep the fallback covered on vector-capable
    /// runners. An override the host cannot honor falls back to the probe
    /// result, never to an unsound selection.
    pub fn detect() -> Self {
        let cached = DETECTED.load(Ordering::Relaxed);
        if cached != 0 {
            return MatchKernel(Self::decode(cached - 1));
        }
        let probed = Self::probe();
        let chosen = match std::env::var("LZFPGA_MATCH_KERNEL") {
            Ok(name) => Self::try_named(name.trim()).unwrap_or(probed),
            Err(_) => probed,
        };
        DETECTED.store(Self::encode(chosen.0) + 1, Ordering::Relaxed);
        chosen
    }

    /// Feature-probe the host, ignoring the cache and the environment.
    fn probe() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return MatchKernel(Isa::Avx2);
            }
            // SSE2 is part of the x86_64 baseline, but probe anyway so the
            // selection logic reads uniformly.
            if std::arch::is_x86_feature_detected!("sse2") {
                return MatchKernel(Isa::Sse2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON (ASIMD) is mandatory in AArch64.
            return MatchKernel(Isa::Neon);
        }
        #[allow(unreachable_code)]
        MatchKernel(Isa::Scalar)
    }

    /// A kernel by name (`scalar`/`sse2`/`avx2`/`neon`/`auto`), or `None`
    /// when the host cannot run it (or the name is unknown). `auto` returns
    /// the feature probe's pick.
    pub fn try_named(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(Self::scalar()),
            "auto" => Some(Self::probe()),
            #[cfg(target_arch = "x86_64")]
            "sse2" if std::arch::is_x86_feature_detected!("sse2") => Some(MatchKernel(Isa::Sse2)),
            #[cfg(target_arch = "x86_64")]
            "avx2" if std::arch::is_x86_feature_detected!("avx2") => Some(MatchKernel(Isa::Avx2)),
            #[cfg(target_arch = "aarch64")]
            "neon" => Some(MatchKernel(Isa::Neon)),
            _ => None,
        }
    }

    /// Every kernel the running host can execute, scalar first. The
    /// differential tests run the full compressor under each of these.
    pub fn supported() -> Vec<Self> {
        let mut all = vec![Self::scalar()];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                all.push(MatchKernel(Isa::Sse2));
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                all.push(MatchKernel(Isa::Avx2));
            }
        }
        #[cfg(target_arch = "aarch64")]
        all.push(MatchKernel(Isa::Neon));
        all
    }

    /// Stable name for reports and telemetry (`scalar`, `sse2`, `avx2`,
    /// `neon`).
    pub fn name(self) -> &'static str {
        match self.0 {
            Isa::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => "sse2",
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => "avx2",
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => "neon",
        }
    }

    /// Bytes compared per vector step — the software "bus width".
    pub fn lane_bytes(self) -> u32 {
        match self.0 {
            Isa::Scalar => 8,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => 16,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => 32,
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => 16,
        }
    }

    fn encode(isa: Isa) -> u8 {
        match isa {
            Isa::Scalar => 0,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => 1,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => 2,
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => 3,
        }
    }

    fn decode(code: u8) -> Isa {
        match code {
            #[cfg(target_arch = "x86_64")]
            1 => Isa::Sse2,
            #[cfg(target_arch = "x86_64")]
            2 => Isa::Avx2,
            #[cfg(target_arch = "aarch64")]
            3 => Isa::Neon,
            _ => Isa::Scalar,
        }
    }

    /// Length of the common prefix of `data[a..]` and `data[b..]`, capped
    /// at `limit`, compared a vector register at a time.
    ///
    /// Caller guarantees `a < b` and `b + limit <= data.len()` (the same
    /// invariant as [`crate::turbo::match_length_fast`], which the
    /// compressor upholds via `limit = MAX_MATCH.min(len - pos)`).
    #[inline]
    pub fn match_length(self, data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        debug_assert!(a < b);
        debug_assert!(b + limit as usize <= data.len());
        if matches!(self.0, Isa::Scalar) {
            return match_length_scalar(data, a, b, limit);
        }
        // Hybrid filter on the safe, inlinable side of the dispatch: most
        // compares mismatch within the first 8 bytes (the match-length
        // histograms are log2-heavy at the short end), and a
        // `#[target_feature]` function cannot inline into this caller — so
        // resolving the common case here skips both the call and the vector
        // load it would have wasted.
        if let Some(n) = first_word_mismatch(data, a, b, limit) {
            return n;
        }
        self.wide_from_8(data, a, b, limit)
    }

    /// The validated ISA, for the monomorphized matcher dispatch in
    /// [`crate::turbo::longest_match`].
    #[inline]
    pub(crate) fn isa(self) -> Isa {
        self.0
    }

    /// Vector continuation once [`first_word_mismatch`] has established that
    /// `limit >= 8` and `data[a..a + 8] == data[b..b + 8]`.
    #[inline]
    fn wide_from_8(self, data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        match self.0 {
            // Unreachable from `match_length` (scalar returns early), but a
            // correct total function either way.
            Isa::Scalar => match_length_scalar(data, a, b, limit),
            // SAFETY: a MatchKernel for a vector ISA is only constructible
            // after `is_x86_feature_detected!` (resp. the AArch64 baseline)
            // confirmed the host supports it — see the module docs.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe { match_length_sse2(data, a, b, limit) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { match_length_avx2(data, a, b, limit) },
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => unsafe { match_length_neon(data, a, b, limit) },
        }
    }
}

impl Default for MatchKernel {
    fn default() -> Self {
        Self::detect()
    }
}

impl std::fmt::Display for MatchKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scalar kernel: 8 bytes per branch, with the tail folded into a single
/// zero-padded partial-word compare (no per-byte loop — short matches are
/// the common case in the log2 histograms, so the tail *is* the hot path).
///
/// Caller guarantees `a < b` and `b + limit <= data.len()`.
#[inline]
pub fn match_length_scalar(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
    let max = limit as usize;
    // `a + max <= b + max <= data.len()`, so both windows are in bounds; the
    // exact-length subslices let the compiler drop per-iteration checks and
    // `chunks_exact(8)` makes each `try_into` a free reinterpretation.
    let pa = &data[a..a + max];
    let pb = &data[b..b + max];
    let mut ca = pa.chunks_exact(8);
    let mut cb = pb.chunks_exact(8);
    let mut n = 0usize;
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        let wa = u64::from_le_bytes(wa.try_into().expect("8-byte chunk"));
        let wb = u64::from_le_bytes(wb.try_into().expect("8-byte chunk"));
        let diff = wa ^ wb;
        if diff != 0 {
            // First differing byte: in little-endian order the low byte of
            // the word is the first byte of the slice, so the mismatch
            // offset is trailing-zero-bits / 8 — the software form of the
            // hardware's priority encoder over the bus comparator lanes.
            return (n + (diff.trailing_zeros() / 8) as usize) as u32;
        }
        n += 8;
    }
    // Masked tail: widen the `tail < 8` remaining bytes to one zero-padded
    // word each. Equal padding can never create a difference, so the XOR
    // form is exact, and a clean tail falls straight through.
    let (ra, rb) = (ca.remainder(), cb.remainder());
    let tail = ra.len();
    if tail > 0 {
        let mut wa = [0u8; 8];
        let mut wb = [0u8; 8];
        wa[..tail].copy_from_slice(ra);
        wb[..tail].copy_from_slice(rb);
        let diff = u64::from_le_bytes(wa) ^ u64::from_le_bytes(wb);
        if diff != 0 {
            return (n + (diff.trailing_zeros() / 8) as usize) as u32;
        }
        n += tail;
    }
    n as u32
}

/// First-word filter shared by the vector kernels: most compares mismatch
/// within the first 8 bytes (the match-length histograms are log2-heavy at
/// the short end), so one scalar word compare resolves the common case
/// before any vector load is paid for. Returns the mismatch offset, or
/// `None` when the first `8.min(limit)` bytes all agree (callers continue
/// wide from offset 8).
///
/// Caller guarantees `b + limit <= data.len()` (same as every kernel).
#[inline(always)]
fn first_word_mismatch(data: &[u8], a: usize, b: usize, limit: u32) -> Option<u32> {
    if limit < 8 {
        return Some(match_length_scalar(data, a, b, limit));
    }
    let wa = u64::from_le_bytes(data[a..a + 8].try_into().expect("8 bytes"));
    let wb = u64::from_le_bytes(data[b..b + 8].try_into().expect("8 bytes"));
    let diff = wa ^ wb;
    if diff != 0 {
        return Some(diff.trailing_zeros() / 8);
    }
    None
}

/// Compile-time kernel selection for the monomorphized matcher loops.
///
/// [`MatchKernel::match_length`] pays an un-inlinable `#[target_feature]`
/// call per probe — noise for a one-off compare, but the chain walk in
/// `crate::turbo::longest_match` makes millions of probes, most of which
/// resolve in a handful of bytes, so per-call overhead rivals the compare
/// itself. The matcher therefore dispatches *once per call* to a loop
/// monomorphized over one of these ZSTs; inside a matching
/// `#[target_feature]` context every `len` fuses into the walk.
pub(crate) trait Compare {
    /// Same function and caller contract as [`MatchKernel::match_length`].
    ///
    /// # Safety
    /// The host must support the implementor's ISA. Callers obtain that
    /// proof the same way `match_length` does: from a constructed
    /// [`MatchKernel`] carrying the corresponding [`Isa`] value.
    unsafe fn len(data: &[u8], a: usize, b: usize, limit: u32) -> u32;
}

/// [`Compare`] via [`match_length_scalar`]: safe everywhere.
pub(crate) struct ScalarCmp;

impl Compare for ScalarCmp {
    #[inline(always)]
    unsafe fn len(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        match_length_scalar(data, a, b, limit)
    }
}

/// [`Compare`] via the SSE2 kernel.
#[cfg(target_arch = "x86_64")]
pub(crate) struct Sse2Cmp;

#[cfg(target_arch = "x86_64")]
impl Compare for Sse2Cmp {
    #[inline(always)]
    unsafe fn len(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        if let Some(n) = first_word_mismatch(data, a, b, limit) {
            return n;
        }
        // SAFETY: forwarded from the trait contract (host supports SSE2);
        // the first-word check above establishes the `limit >= 8` /
        // equal-first-word contract.
        unsafe { match_length_sse2(data, a, b, limit) }
    }
}

/// [`Compare`] via the AVX2 kernel.
#[cfg(target_arch = "x86_64")]
pub(crate) struct Avx2Cmp;

#[cfg(target_arch = "x86_64")]
impl Compare for Avx2Cmp {
    #[inline(always)]
    unsafe fn len(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        if let Some(n) = first_word_mismatch(data, a, b, limit) {
            return n;
        }
        // SAFETY: forwarded from the trait contract (host supports AVX2);
        // first-word contract established above.
        unsafe { match_length_avx2(data, a, b, limit) }
    }
}

/// [`Compare`] via the NEON kernel.
#[cfg(target_arch = "aarch64")]
pub(crate) struct NeonCmp;

#[cfg(target_arch = "aarch64")]
impl Compare for NeonCmp {
    #[inline(always)]
    unsafe fn len(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        if let Some(n) = first_word_mismatch(data, a, b, limit) {
            return n;
        }
        // SAFETY: NEON is the AArch64 baseline; first-word contract
        // established above.
        unsafe { match_length_neon(data, a, b, limit) }
    }
}

/// SSE2 kernel: 16 bytes per branch via `pcmpeqb` + `pmovmskb`; the first
/// zero bit of the equality mask is the mismatch offset. Continues from
/// offset 8 — the caller (`MatchKernel::wide_from_8`) has already compared
/// the first word.
///
/// # Safety
/// Caller guarantees `a < b`, `b + limit <= data.len()`, `limit >= 8` with
/// `data[a..a + 8] == data[b..b + 8]`, and that the host supports SSE2
/// (x86_64 baseline; [`MatchKernel`] re-checks anyway).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[inline]
unsafe fn match_length_sse2(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8};
    let max = limit as usize;
    let ptr = data.as_ptr();
    let mut n = 8usize;
    while n + 16 <= max {
        // SAFETY: `n + 16 <= max` and `b + max <= data.len()` give
        // `a + n + 16 <= b + n + 16 <= data.len()` — both unaligned loads
        // stay inside `data`.
        let (va, vb) = unsafe {
            (_mm_loadu_si128(ptr.add(a + n).cast()), _mm_loadu_si128(ptr.add(b + n).cast()))
        };
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if eq != 0xFFFF {
            // The equality mask has one bit per byte lane, lane 0 in bit 0:
            // the first zero bit is the first mismatching byte.
            return (n + (!eq & 0xFFFF).trailing_zeros() as usize) as u32;
        }
        n += 16;
    }
    n as u32 + match_length_scalar(data, a + n, b + n, (max - n) as u32)
}

/// AVX2 kernel: 32 bytes per branch via `vpcmpeqb` + `vpmovmskb` — the
/// paper's 32-bit bus comparator, eight times over. Continues from offset
/// 8 (the first word is the caller's).
///
/// # Safety
/// Caller guarantees `a < b`, `b + limit <= data.len()`, `limit >= 8` with
/// `data[a..a + 8] == data[b..b + 8]`, and that the host supports AVX2
/// (enforced by [`MatchKernel`]'s constructors).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn match_length_avx2(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
    use std::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm_cmpeq_epi8,
        _mm_loadu_si128, _mm_movemask_epi8,
    };
    let max = limit as usize;
    let ptr = data.as_ptr();
    let mut n = 8usize;
    while n + 32 <= max {
        // SAFETY: `n + 32 <= max` and `b + max <= data.len()` keep both
        // 32-byte unaligned loads inside `data` (same argument as SSE2).
        let (va, vb) = unsafe {
            (_mm256_loadu_si256(ptr.add(a + n).cast()), _mm256_loadu_si256(ptr.add(b + n).cast()))
        };
        let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)) as u32;
        if eq != u32::MAX {
            return (n + (!eq).trailing_zeros() as usize) as u32;
        }
        n += 32;
    }
    // One 16-byte step before the scalar tail (AVX2 implies SSE2, and the
    // leftover after the 32-byte loop can still hold a full SSE2 lane).
    if n + 16 <= max {
        // SAFETY: `n + 16 <= max` keeps both 16-byte loads inside `data`.
        let (va, vb) = unsafe {
            (_mm_loadu_si128(ptr.add(a + n).cast()), _mm_loadu_si128(ptr.add(b + n).cast()))
        };
        let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) as u32;
        if eq != 0xFFFF {
            return (n + (!eq & 0xFFFF).trailing_zeros() as usize) as u32;
        }
        n += 16;
    }
    n as u32 + match_length_scalar(data, a + n, b + n, (max - n) as u32)
}

/// NEON kernel: 16 bytes per branch via `cmeq` + the `shrn`-by-4 mask
/// narrowing trick (4 mask bits per byte lane in a 64-bit scalar).
/// Continues from offset 8 (the first word is the caller's).
///
/// # Safety
/// Caller guarantees `a < b`, `b + limit <= data.len()`, and `limit >= 8`
/// with `data[a..a + 8] == data[b..b + 8]`. NEON is mandatory on AArch64,
/// so the feature precondition is the baseline.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
#[inline]
unsafe fn match_length_neon(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
    use std::arch::aarch64::{
        vceqq_u8, vget_lane_u64, vld1q_u8, vreinterpret_u64_u8, vreinterpretq_u16_u8, vshrn_n_u16,
    };
    let max = limit as usize;
    let ptr = data.as_ptr();
    let mut n = 8usize;
    while n + 16 <= max {
        // SAFETY: `n + 16 <= max` and `b + max <= data.len()` keep both
        // 16-byte loads inside `data`.
        let (va, vb) = unsafe { (vld1q_u8(ptr.add(a + n)), vld1q_u8(ptr.add(b + n))) };
        let eq = vceqq_u8(va, vb);
        // Narrow each 16-bit pair of lane masks to its middle 8 bits: the
        // result packs 4 bits per byte lane, lane 0 in the low nibble.
        let mask =
            vget_lane_u64::<0>(vreinterpret_u64_u8(vshrn_n_u16::<4>(vreinterpretq_u16_u8(eq))));
        if mask != u64::MAX {
            return (n + ((!mask).trailing_zeros() / 4) as usize) as u32;
        }
        n += 16;
    }
    n as u32 + match_length_scalar(data, a + n, b + n, (max - n) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lzfpga_sim::rng::XorShift64;

    /// Naive byte loop every kernel must agree with everywhere.
    fn match_length_slow(data: &[u8], a: usize, b: usize, limit: u32) -> u32 {
        let max = limit as usize;
        let mut n = 0usize;
        while n < max && data[a + n] == data[b + n] {
            n += 1;
        }
        n as u32
    }

    #[test]
    fn detect_is_cached_and_supported() {
        let k = MatchKernel::detect();
        assert_eq!(k, MatchKernel::detect());
        assert!(MatchKernel::supported().contains(&k));
        assert!(k.lane_bytes() >= 8);
    }

    #[test]
    fn names_round_trip_through_try_named() {
        for k in MatchKernel::supported() {
            assert_eq!(MatchKernel::try_named(k.name()), Some(k), "{k}");
        }
        assert_eq!(MatchKernel::try_named("vliw"), None);
        assert!(MatchKernel::try_named("auto").is_some());
    }

    #[test]
    fn every_kernel_matches_the_byte_loop_on_random_offsets() {
        let mut rng = XorShift64::new(0xA11CE);
        let mut data: Vec<u8> = (0..8_192).map(|_| b'a' + rng.next_u8() % 3).collect();
        for plant in 0..64 {
            data[2_000 + plant * 13] = b'!';
        }
        for kernel in MatchKernel::supported() {
            for _ in 0..5_000 {
                let b = 1 + rng.below_usize(data.len() - 1);
                let a = rng.below_usize(b);
                let limit = 258.min((data.len() - b) as u32);
                assert_eq!(
                    kernel.match_length(&data, a, b, limit),
                    match_length_slow(&data, a, b, limit),
                    "{kernel} a={a} b={b} limit={limit}"
                );
            }
        }
    }

    #[test]
    fn every_kernel_handles_every_boundary_length() {
        // All prefix lengths 0..=70: crosses the 8-, 16- and 32-byte lane
        // boundaries of every implemented kernel, plus the masked tails.
        for kernel in MatchKernel::supported() {
            for agree in 0..=70usize {
                let mut data = vec![b'x'; 160 + agree];
                data[80 + agree] = b'?';
                let limit = 258.min((data.len() - 80) as u32);
                assert_eq!(kernel.match_length(&data, 0, 80, limit), agree as u32, "{kernel}");
            }
        }
    }

    #[test]
    fn kernels_respect_the_limit_exactly() {
        let data = vec![7u8; 1_024];
        for kernel in MatchKernel::supported() {
            for limit in [0u32, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 258] {
                assert_eq!(kernel.match_length(&data, 0, 500, limit), limit, "{kernel}");
            }
        }
    }

    #[test]
    fn kernels_handle_overlapping_windows() {
        // dist < lane width: the a- and b-side loads overlap. Comparison
        // semantics (unlike copy semantics) are unaffected; verify anyway.
        let data = vec![b'r'; 600];
        for kernel in MatchKernel::supported() {
            for dist in 1..40usize {
                let b = 300;
                let a = b - dist;
                let limit = 258.min((data.len() - b) as u32);
                assert_eq!(
                    kernel.match_length(&data, a, b, limit),
                    match_length_slow(&data, a, b, limit),
                    "{kernel} dist={dist}"
                );
            }
        }
    }

    #[test]
    fn kernels_agree_at_the_very_end_of_the_buffer() {
        // `b + limit == data.len()` exactly: no kernel may read past it.
        let mut rng = XorShift64::new(9);
        let mut data = vec![0u8; 512];
        rng.fill_bytes(&mut data);
        let pattern: Vec<u8> = data[100..150].to_vec();
        data.extend_from_slice(&pattern);
        let b = data.len() - pattern.len();
        for kernel in MatchKernel::supported() {
            for limit in 0..=pattern.len() as u32 {
                assert_eq!(
                    kernel.match_length(&data, 100, b, limit),
                    match_length_slow(&data, 100, b, limit),
                    "{kernel} limit={limit}"
                );
            }
        }
    }
}
