//! LZSS token decoder — expands decompressor commands back into bytes.
//!
//! This is the §III "decompressor" side of the format: literals append one
//! byte; `copy(dist, len)` replays bytes from the sliding window, allowing
//! self-overlap. The decoder additionally enforces the *configured* window
//! size (stricter than Deflate's global 32 KiB bound) so tests catch any
//! compressor emitting distances its own dictionary could not have held.

use lzfpga_deflate::token::Token;

/// Errors detected while expanding a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A match references data before the start of output.
    DistanceBeforeStart {
        /// Output position at which the bad token was seen.
        at: usize,
        /// The offending distance.
        dist: u32,
    },
    /// A match distance exceeds the configured window size.
    DistanceExceedsWindow {
        /// Output position at which the bad token was seen.
        at: usize,
        /// The offending distance.
        dist: u32,
        /// The configured window.
        window: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DecodeError::DistanceBeforeStart { at, dist } => {
                write!(f, "distance {dist} reaches before start of output at {at}")
            }
            DecodeError::DistanceExceedsWindow { at, dist, window } => {
                write!(f, "distance {dist} exceeds window {window} at {at}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Expand `tokens` into bytes, enforcing `window_size` as the maximum
/// distance.
pub fn decode_tokens(tokens: &[Token], window_size: u32) -> Result<Vec<u8>, DecodeError> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                if dist > window_size {
                    return Err(DecodeError::DistanceExceedsWindow {
                        at: out.len(),
                        dist,
                        window: window_size,
                    });
                }
                if dist as usize > out.len() {
                    return Err(DecodeError::DistanceBeforeStart { at: out.len(), dist });
                }
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

/// Expand `tokens` produced against a preset dictionary: distances may
/// reach into `dict`, whose bytes do not appear in the output.
pub fn decode_tokens_with_dict(
    tokens: &[Token],
    dict: &[u8],
    window_size: u32,
) -> Result<Vec<u8>, DecodeError> {
    let mut out = dict.to_vec();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                if dist > window_size {
                    return Err(DecodeError::DistanceExceedsWindow {
                        at: out.len() - dict.len(),
                        dist,
                        window: window_size,
                    });
                }
                if dist as usize > out.len() {
                    return Err(DecodeError::DistanceBeforeStart {
                        at: out.len() - dict.len(),
                        dist,
                    });
                }
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out.drain(..dict.len());
    Ok(out)
}

/// Expand a stream of the paper's raw `(D, L)` pairs (§III wire format).
pub fn decode_dl_stream(pairs: &[(u16, u8)], window_size: u32) -> Result<Vec<u8>, DecodeError> {
    let tokens: Vec<Token> = pairs.iter().map(|&(d, l)| Token::from_dl_pair(d, l)).collect();
    decode_tokens(&tokens, window_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lzfpga_deflate::token::Token as T;

    #[test]
    fn literal_stream() {
        let tokens: Vec<T> = b"plain".iter().copied().map(T::Literal).collect();
        assert_eq!(decode_tokens(&tokens, 4_096).unwrap(), b"plain");
    }

    #[test]
    fn snowy_snow_paper_example() {
        let mut tokens: Vec<T> = b"snowy ".iter().copied().map(T::Literal).collect();
        tokens.push(T::new_match(6, 4));
        assert_eq!(decode_tokens(&tokens, 4_096).unwrap(), b"snowy snow");
    }

    #[test]
    fn overlapping_copy_rle_style() {
        let tokens = vec![T::Literal(b'x'), T::new_match(1, 258)];
        let out = decode_tokens(&tokens, 1_024).unwrap();
        assert_eq!(out.len(), 259);
        assert!(out.iter().all(|&b| b == b'x'));
    }

    #[test]
    fn distance_before_start_rejected() {
        let tokens = vec![T::Literal(b'a'), T::new_match(2, 3)];
        assert_eq!(
            decode_tokens(&tokens, 4_096),
            Err(DecodeError::DistanceBeforeStart { at: 1, dist: 2 })
        );
    }

    #[test]
    fn window_violation_rejected() {
        let tokens: Vec<T> = (0..2_000u32)
            .map(|i| T::Literal((i % 251) as u8))
            .chain([T::new_match(1_500, 3)])
            .collect();
        assert_eq!(
            decode_tokens(&tokens, 1_024),
            Err(DecodeError::DistanceExceedsWindow { at: 2_000, dist: 1_500, window: 1_024 })
        );
        // The same stream is fine with a 2 KiB window.
        assert!(decode_tokens(&tokens, 2_048).is_ok());
    }

    #[test]
    fn dl_pair_stream_round_trip() {
        let pairs =
            vec![(0u16, b's'), (0, b'n'), (0, b'o'), (0, b'w'), (0, b'y'), (0, b' '), (6, 1)];
        assert_eq!(decode_dl_stream(&pairs, 4_096).unwrap(), b"snowy snow");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DecodeError::DistanceExceedsWindow { at: 7, dist: 9_999, window: 4_096 };
        assert!(e.to_string().contains("9999"));
        assert!(e.to_string().contains("4096"));
    }
}
