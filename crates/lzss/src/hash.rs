//! 3-byte string hashes for the head/next chain tables.
//!
//! "Exact hash function" is one of the paper's compile-time generics; the two
//! families implemented here are the ones that make sense in the design:
//!
//! * [`HashFn::zlib`] — ZLib's shift-xor rolling hash. Cheap in LUTs (pure
//!   xor/shift network) and updatable one byte at a time, which is what the
//!   background filler's hash-cache pipeline needs.
//! * [`HashFn::multiplicative`] — Knuth-style multiplicative hash over the
//!   packed 3 bytes. Better avalanche at small widths, but needs a DSP
//!   multiplier in hardware.

/// Minimum match length — the hash covers exactly this many bytes.
pub const HASH_BYTES: usize = 3;

/// A concrete 3-byte hash configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashFn {
    /// ZLib rolling hash: `h = ((h << shift) ^ byte) & mask` applied to each
    /// of the 3 bytes starting from zero.
    ZlibRolling {
        /// Output width in bits.
        bits: u32,
        /// Per-byte shift; zlib uses `ceil(bits / 3)` so all three bytes
        /// influence the result.
        shift: u32,
    },
    /// `(b0 | b1<<8 | b2<<16) * 2654435761 >> (32 - bits)`.
    Multiplicative {
        /// Output width in bits.
        bits: u32,
    },
}

impl HashFn {
    /// ZLib's default configuration for a given width.
    pub fn zlib(bits: u32) -> Self {
        HashFn::ZlibRolling { bits, shift: bits.div_ceil(3) }
    }

    /// Multiplicative (Fibonacci) hash of a given width.
    pub fn multiplicative(bits: u32) -> Self {
        HashFn::Multiplicative { bits }
    }

    /// Output width in bits.
    pub fn bits(&self) -> u32 {
        match *self {
            HashFn::ZlibRolling { bits, .. } | HashFn::Multiplicative { bits } => bits,
        }
    }

    /// Hash three bytes.
    #[inline]
    pub fn hash3(&self, b0: u8, b1: u8, b2: u8) -> u32 {
        match *self {
            HashFn::ZlibRolling { bits, shift } => {
                let mask = (1u32 << bits) - 1;
                let mut h = u32::from(b0);
                h = ((h << shift) ^ u32::from(b1)) & mask;
                h = ((h << shift) ^ u32::from(b2)) & mask;
                h
            }
            HashFn::Multiplicative { bits } => {
                let x = u32::from(b0) | (u32::from(b1) << 8) | (u32::from(b2) << 16);
                x.wrapping_mul(2_654_435_761) >> (32 - bits)
            }
        }
    }

    /// Hash the 3 bytes at `data[pos..pos + 3]`.
    ///
    /// # Panics
    /// Panics (via slice indexing) when fewer than 3 bytes remain.
    #[inline]
    pub fn hash_at(&self, data: &[u8], pos: usize) -> u32 {
        self.hash3(data[pos], data[pos + 1], data[pos + 2])
    }

    /// Hash the 4 consecutive positions `pos..pos + 4` in one call —
    /// four independent lanes of the same arithmetic, written so the
    /// compiler can schedule (or vectorize) them together instead of
    /// serializing one table insert per hash. Each lane equals
    /// [`Self::hash_at`] at its position exactly; the bulk-insert loops in
    /// the turbo engine rely on that to stay token-identical.
    ///
    /// # Panics
    /// Panics (via slice indexing) when fewer than 7 bytes remain at `pos`
    /// (position `pos + 3` still hashes 3 bytes).
    #[inline]
    pub fn hash4_at(&self, data: &[u8], pos: usize) -> [u32; 4] {
        let b: [u32; 7] = {
            let w = &data[pos..pos + 7];
            [
                u32::from(w[0]),
                u32::from(w[1]),
                u32::from(w[2]),
                u32::from(w[3]),
                u32::from(w[4]),
                u32::from(w[5]),
                u32::from(w[6]),
            ]
        };
        match *self {
            HashFn::ZlibRolling { bits, shift } => {
                let mask = (1u32 << bits) - 1;
                let mut h = [b[0], b[1], b[2], b[3]];
                for i in 0..4 {
                    h[i] = ((h[i] << shift) ^ b[i + 1]) & mask;
                }
                for i in 0..4 {
                    h[i] = ((h[i] << shift) ^ b[i + 2]) & mask;
                }
                h
            }
            HashFn::Multiplicative { bits } => {
                let mut h = [0u32; 4];
                for i in 0..4 {
                    let x = b[i] | (b[i + 1] << 8) | (b[i + 2] << 16);
                    h[i] = x.wrapping_mul(2_654_435_761) >> (32 - bits);
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zlib_default_shift() {
        assert_eq!(HashFn::zlib(15), HashFn::ZlibRolling { bits: 15, shift: 5 });
        assert_eq!(HashFn::zlib(9), HashFn::ZlibRolling { bits: 9, shift: 3 });
    }

    #[test]
    fn outputs_fit_declared_width() {
        for bits in 8..=20 {
            for f in [HashFn::zlib(bits), HashFn::multiplicative(bits)] {
                for (a, b, c) in [(0, 0, 0), (255, 255, 255), (1, 2, 3), (0x61, 0x62, 0x63)] {
                    let h = f.hash3(a, b, c);
                    assert!(h < (1 << bits), "{f:?} hash3({a},{b},{c}) = {h}");
                }
            }
        }
    }

    #[test]
    fn deterministic_and_position_sensitive() {
        let f = HashFn::zlib(15);
        assert_eq!(f.hash3(1, 2, 3), f.hash3(1, 2, 3));
        assert_ne!(f.hash3(1, 2, 3), f.hash3(3, 2, 1));
    }

    #[test]
    fn all_three_bytes_influence_zlib_hash() {
        let f = HashFn::zlib(15);
        let base = f.hash3(10, 20, 30);
        assert_ne!(base, f.hash3(11, 20, 30));
        assert_ne!(base, f.hash3(10, 21, 30));
        assert_ne!(base, f.hash3(10, 20, 31));
    }

    #[test]
    fn hash_at_matches_hash3() {
        let f = HashFn::multiplicative(12);
        let data = b"hello world";
        for pos in 0..data.len() - 2 {
            assert_eq!(f.hash_at(data, pos), f.hash3(data[pos], data[pos + 1], data[pos + 2]));
        }
    }

    #[test]
    fn hash4_at_equals_four_hash_ats() {
        let data = b"the quick brown fox jumps over the lazy dog 0123456789";
        for f in [HashFn::zlib(15), HashFn::zlib(9), HashFn::multiplicative(12)] {
            for pos in 0..data.len() - 7 {
                let wide = f.hash4_at(data, pos);
                for (lane, h) in wide.into_iter().enumerate() {
                    assert_eq!(h, f.hash_at(data, pos + lane), "{f:?} pos={pos} lane={lane}");
                }
            }
        }
    }

    #[test]
    fn rough_distribution_quality() {
        // Hashing all 3-grams of a text-like alphabet should touch a decent
        // fraction of a small table (collision behaviour drives Fig. 3).
        let f = HashFn::zlib(12);
        let mut seen = vec![false; 1 << 12];
        let alphabet = b"abcdefghij ";
        for &a in alphabet {
            for &b in alphabet {
                for &c in alphabet {
                    seen[f.hash3(a, b, c) as usize] = true;
                }
            }
        }
        let used = seen.iter().filter(|&&s| s).count();
        // 1331 trigrams into 4096 slots: expect most to be distinct.
        assert!(used > 900, "only {used} distinct slots");
    }
}
