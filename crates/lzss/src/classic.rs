//! The *original* LZSS wire format — flag bit + fixed-width (offset, length)
//! fields, as in Storer–Szymanski and the classic Okumura implementation.
//!
//! The paper's §III is explicit that its format is the "ZLib-based
//! implementation that has minor differences from the original LZSS \[4\]".
//! This module implements the original so the repo can quantify what those
//! differences (and the fixed-Huffman back-end) buy:
//!
//! * a set flag bit introduces a **raw literal byte** (9 bits/literal);
//! * a clear flag bit introduces a **fixed-width pair**: `offset_bits` of
//!   distance and `length_bits` of length-minus-`MIN_MATCH` (so the classic
//!   12+4 layout encodes lengths 3..=18 in 17 bits);
//! * no entropy coding whatsoever — the bit cost is data-independent, which
//!   is exactly why Deflate layers Huffman on top.
//!
//! Long matches from the zlib-style matcher are legal here too: a match is
//! split into `max_len`-sized chunks at the *same* distance (self-
//! referential copies still resolve correctly chunk by chunk).

use lzfpga_deflate::bitio::{BitReader, BitWriter};
use lzfpga_deflate::fixed::MIN_MATCH;
use lzfpga_deflate::token::Token;

/// Errors decoding a classic LZSS bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassicError {
    /// The stream ended inside a token.
    Truncated,
    /// A pair copies from before the start of output.
    DistanceTooFar {
        /// The offending distance.
        dist: u32,
        /// Bytes produced when it was seen.
        produced: u64,
    },
}

impl std::fmt::Display for ClassicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ClassicError::Truncated => write!(f, "classic LZSS stream truncated"),
            ClassicError::DistanceTooFar { dist, produced } => {
                write!(f, "distance {dist} reaches before start (produced {produced})")
            }
        }
    }
}

impl std::error::Error for ClassicError {}

/// Geometry of the classic bit format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassicParams {
    /// Bits in the offset field; the window is `2^offset_bits`.
    pub offset_bits: u32,
    /// Bits in the length field; lengths span `MIN_MATCH ..
    /// MIN_MATCH + 2^length_bits - 1`.
    pub length_bits: u32,
}

impl ClassicParams {
    /// The canonical Okumura layout: 12-bit offset, 4-bit length (4 KB
    /// window, lengths 3..=18) — the same window as the paper's fast preset.
    pub fn okumura() -> Self {
        Self { offset_bits: 12, length_bits: 4 }
    }

    /// Window size implied by the offset width.
    pub fn window_size(&self) -> u32 {
        1 << self.offset_bits
    }

    /// Longest encodable match.
    pub fn max_len(&self) -> u32 {
        MIN_MATCH + (1 << self.length_bits) - 1
    }

    /// Validate geometry.
    ///
    /// # Panics
    /// Panics on degenerate field widths.
    pub fn validate(&self) {
        assert!(
            (8..=16).contains(&self.offset_bits),
            "offset bits {} out of range 8..=16",
            self.offset_bits
        );
        assert!(
            (2..=8).contains(&self.length_bits),
            "length bits {} out of range 2..=8",
            self.length_bits
        );
    }
}

/// Split lengths so no sub-minimum tail can arise: chunks of `max_len`
/// until the remainder is representable, balancing the last two chunks when
/// the tail would drop below `MIN_MATCH`.
fn split_len(len: u32, max_len: u32) -> Vec<u32> {
    let mut chunks = Vec::new();
    let mut remaining = len;
    while remaining > max_len {
        let take = if remaining - max_len < MIN_MATCH {
            // Leave a representable tail.
            remaining - MIN_MATCH
        } else {
            max_len
        };
        chunks.push(take);
        remaining -= take;
    }
    chunks.push(remaining);
    chunks
}

/// Encode a token stream in the classic format. Matches longer than the
/// geometry allows are split tail-safely at the same distance
/// (self-referential copies resolve correctly chunk by chunk); matches
/// farther than the window must not occur.
///
/// # Panics
/// Panics if a token's distance exceeds the representable window.
pub fn encode_classic(tokens: &[Token], params: &ClassicParams) -> Vec<u8> {
    params.validate();
    let max_len = params.max_len();
    let mut w = BitWriter::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_bits(1, 1);
                w.write_bits(u64::from(b), 8);
            }
            Token::Match { dist, len } => {
                assert!(
                    dist >= 1 && dist <= params.window_size(),
                    "distance {dist} exceeds the classic window"
                );
                for chunk in split_len(len, max_len) {
                    debug_assert!((MIN_MATCH..=max_len).contains(&chunk));
                    w.write_bits(0, 1);
                    w.write_bits(u64::from(dist - 1), params.offset_bits);
                    w.write_bits(u64::from(chunk - MIN_MATCH), params.length_bits);
                }
            }
        }
    }
    w.finish()
}

/// Decode a classic LZSS bit stream produced by [`encode_classic`].
pub fn decode_classic(data: &[u8], params: &ClassicParams) -> Result<Vec<u8>, ClassicError> {
    params.validate();
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    // Stop when fewer than one full literal remains: trailing zero padding
    // (< 9 bits) cannot encode anything.
    while r.remaining_bits() >= 9 {
        let flag = r.read_bit().map_err(|_| ClassicError::Truncated)?;
        if flag == 1 {
            let b = r.read_bits(8).map_err(|_| ClassicError::Truncated)? as u8;
            out.push(b);
        } else {
            if r.remaining_bits() < u64::from(params.offset_bits + params.length_bits) {
                // Padding bits after the final token.
                break;
            }
            let dist =
                r.read_bits(params.offset_bits).map_err(|_| ClassicError::Truncated)? as u32 + 1;
            let len = r.read_bits(params.length_bits).map_err(|_| ClassicError::Truncated)? as u32
                + MIN_MATCH;
            if u64::from(dist) > out.len() as u64 {
                return Err(ClassicError::DistanceTooFar { dist, produced: out.len() as u64 });
            }
            for _ in 0..len {
                let b = out[out.len() - dist as usize];
                out.push(b);
            }
        }
    }
    Ok(out)
}

/// Compressed size (in bits) of a token stream in the classic format —
/// the data-independent cost model used in the Huffman-benefit experiment.
pub fn classic_bit_size(tokens: &[Token], params: &ClassicParams) -> u64 {
    let pair_bits = u64::from(1 + params.offset_bits + params.length_bits);
    let max_len = params.max_len();
    tokens
        .iter()
        .map(|t| match *t {
            Token::Literal(_) => 9,
            Token::Match { len, .. } => pair_bits * split_len(len, max_len).len() as u64,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LzssParams;
    use crate::reference::compress;

    fn okumura_roundtrip(data: &[u8]) {
        // Compress with a matcher whose window fits the classic offset
        // field.
        let params = LzssParams::new(4_096, 13, crate::params::CompressionLevel::Min);
        let tokens = compress(data, &params);
        let cp = ClassicParams::okumura();
        let bits = encode_classic(&tokens, &cp);
        assert_eq!(decode_classic(&bits, &cp).unwrap(), data);
    }

    #[test]
    fn empty_and_small() {
        okumura_roundtrip(b"");
        okumura_roundtrip(b"a");
        okumura_roundtrip(b"snowy snow");
    }

    #[test]
    fn long_matches_split_correctly() {
        let data = vec![b'q'; 10_000];
        okumura_roundtrip(&data);
        // Mixed content with 258-length runs.
        let mut mixed = b"header".to_vec();
        mixed.extend(std::iter::repeat_n(b'#', 1_000));
        mixed.extend_from_slice(b"trailer");
        okumura_roundtrip(&mixed);
    }

    #[test]
    fn split_len_never_strands_a_tail() {
        for len in MIN_MATCH..=258 {
            for max_len in [10u32, 18, 33, 258] {
                let chunks = split_len(len, max_len);
                assert_eq!(chunks.iter().sum::<u32>(), len, "len {len} max {max_len}");
                for c in &chunks {
                    assert!(
                        (MIN_MATCH..=max_len).contains(c),
                        "len {len} max {max_len}: chunk {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn geometry_variants_round_trip() {
        let data: Vec<u8> =
            (0..30_000u32).flat_map(|i| format!("{} ", i % 800).into_bytes()).collect();
        for (ob, lb) in [(8u32, 2u32), (10, 3), (12, 4), (14, 6), (16, 8)] {
            let cp = ClassicParams { offset_bits: ob, length_bits: lb };
            let params = LzssParams::new(
                cp.window_size().clamp(1_024, 32_768),
                12,
                crate::params::CompressionLevel::Min,
            );
            // Ensure the matcher window never exceeds the encodable window.
            let params = if params.window_size > cp.window_size() {
                LzssParams::new(cp.window_size(), 12, crate::params::CompressionLevel::Min)
            } else {
                params
            };
            if params.window_size < 1_024 {
                continue; // matcher floor
            }
            let tokens = compress(&data, &params);
            let bits = encode_classic(&tokens, &cp);
            assert_eq!(decode_classic(&bits, &cp).unwrap(), data, "{cp:?}");
        }
    }

    #[test]
    fn bit_size_model_matches_reality() {
        let data = b"the cost model must agree with the writer ".repeat(100);
        let params = LzssParams::new(4_096, 13, crate::params::CompressionLevel::Min);
        let tokens = compress(&data, &params);
        let cp = ClassicParams::okumura();
        let predicted = classic_bit_size(&tokens, &cp);
        let actual = encode_classic(&tokens, &cp).len() as u64 * 8;
        assert!(actual >= predicted && actual < predicted + 8, "{actual} vs {predicted}");
    }

    #[test]
    fn entropy_coding_trade_offs_match_theory() {
        // Measured reality, codified: the 17-bit classic pair undercuts the
        // fixed-Huffman encoding of *far* matches (~24 bits at 4 KB
        // distances), so match-heavy text favours the classic format; but
        // fixed Huffman spends only 8 bits on common literals (vs 9), so
        // literal-heavy data favours Deflate; and a *dynamic* Huffman block
        // beats the classic format everywhere — which is the real argument
        // for Deflate's structure, and the ratio/throughput trade-off the
        // paper's fixed-table choice deliberately forgoes.
        use lzfpga_deflate::encoder::{fixed_block_bit_size, BlockKind, DeflateEncoder};
        let params = LzssParams::new(4_096, 13, crate::params::CompressionLevel::Min);
        let cp = ClassicParams::okumura();
        let dynamic_bits = |tokens: &[Token]| {
            let mut e = DeflateEncoder::new();
            e.write_block(tokens, BlockKind::DynamicHuffman, true);
            e.bit_len()
        };

        // Match-heavy text: classic wins over fixed, dynamic wins over both.
        let text: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("log entry {} status={}\n", i % 501, i % 7).into_bytes())
            .collect();
        let tokens = compress(&text, &params);
        let classic = classic_bit_size(&tokens, &cp);
        let fixed = fixed_block_bit_size(&tokens);
        let dynamic = dynamic_bits(&tokens);
        assert!(classic < fixed, "text: classic {classic} !< fixed {fixed}");
        assert!(dynamic < classic, "text: dynamic {dynamic} !< classic {classic}");

        // Literal-heavy data: fixed Huffman's 8-bit literals win.
        let noise: Vec<u8> = {
            let mut x = 0x0123_4567_89AB_CDEFu64;
            (0..60_000)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> 56) as u8
                })
                .collect()
        };
        let tokens = compress(&noise, &params);
        let classic = classic_bit_size(&tokens, &cp);
        let fixed = fixed_block_bit_size(&tokens);
        assert!(fixed < classic, "noise: fixed {fixed} !< classic {classic}");
    }

    #[test]
    fn truncated_or_corrupt_streams_error_cleanly() {
        let data = b"abcabcabcabc".repeat(50);
        let params = LzssParams::new(4_096, 13, crate::params::CompressionLevel::Min);
        let tokens = compress(&data, &params);
        let cp = ClassicParams::okumura();
        let bits = encode_classic(&tokens, &cp);
        for cut in 0..bits.len().min(64) {
            let _ = decode_classic(&bits[..cut], &cp); // must not panic
        }
        // A pair pointing before the stream start errs.
        let mut w = BitWriter::new();
        w.write_bits(0, 1);
        w.write_bits(100, 12);
        w.write_bits(0, 4);
        let bad = w.finish();
        assert!(matches!(decode_classic(&bad, &cp), Err(ClassicError::DistanceTooFar { .. })));
    }
}
