//! Algorithm parameters — the paper's compile-time generics and run-time
//! settings, expressed as one runtime struct so the estimator can sweep them.

/// Minimum bytes of lookahead the matcher needs to run at full match length:
/// `MAX_MATCH + MIN_MATCH + 1` — the "262 bytes" the paper's FSM waits for.
pub const MIN_LOOKAHEAD: usize = 262;

/// Matching-effort presets corresponding to the paper's "min/max compression
/// levels" (Fig. 4). The numbers mirror zlib's configuration table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionLevel {
    /// Fastest: tiny chain budget, greedy, skip hash inserts on longer
    /// matches (zlib level 1 — the paper's reference point).
    Min,
    /// Balanced: moderate chain budget with lazy matching (like zlib 6).
    Medium,
    /// Best ratio: deep chains, full lazy evaluation (like zlib 9) — the
    /// paper's "+20 % ratio for −82 % speed" end point.
    Max,
}

impl CompressionLevel {
    /// `(max_chain, lazy, max_insert_or_lazy, nice_length, good_length)`
    /// in zlib terms.
    pub fn tuning(self) -> LevelTuning {
        match self {
            CompressionLevel::Min => LevelTuning {
                max_chain: 4,
                lazy: false,
                max_lazy: 4,
                nice_length: 8,
                good_length: 4,
            },
            CompressionLevel::Medium => LevelTuning {
                max_chain: 128,
                lazy: true,
                max_lazy: 16,
                nice_length: 128,
                good_length: 8,
            },
            CompressionLevel::Max => LevelTuning {
                max_chain: 4_096,
                lazy: true,
                max_lazy: 258,
                nice_length: 258,
                good_length: 32,
            },
        }
    }
}

/// The per-level matcher tuning constants (zlib's `configuration_table`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelTuning {
    /// Maximum hash-chain candidates examined per match attempt — the
    /// paper's run-time "matching iteration limit".
    pub max_chain: u32,
    /// Whether to defer emission by one position looking for a better match.
    pub lazy: bool,
    /// Greedy mode: insert all positions of matches up to this length.
    /// Lazy mode: only search lazily below this current-match length.
    pub max_lazy: u32,
    /// Stop searching once a match of at least this length is found.
    pub nice_length: u32,
    /// Lazy mode: if the previous match is at least this long, reduce effort.
    pub good_length: u32,
}

/// Full parameter set for any compressor in this workspace (software
/// reference or hardware model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzssParams {
    /// Dictionary (sliding window) size in bytes; power of two, 256..=32768.
    pub window_size: u32,
    /// Hash width in bits (head table has `2^hash_bits` entries).
    pub hash_bits: u32,
    /// Hash function selection.
    pub hash_fn: crate::hash::HashFn,
    /// Matching effort preset.
    pub level: CompressionLevel,
    /// Optional run-time override of the preset's matching iteration limit
    /// (the paper: "Run-time parameters (e.g. matching iteration limit),
    /// can also be changed"). `None` keeps the preset's budget.
    pub chain_limit: Option<u32>,
}

impl LzssParams {
    /// The paper's speed-optimised configuration: 4 KB dictionary, 15-bit
    /// hash, minimum (fastest) level.
    pub fn paper_fast() -> Self {
        Self {
            window_size: 4_096,
            hash_bits: 15,
            hash_fn: crate::hash::HashFn::zlib(15),
            level: CompressionLevel::Min,
            chain_limit: None,
        }
    }

    /// Construct with the default (zlib-style) hash for the given geometry.
    pub fn new(window_size: u32, hash_bits: u32, level: CompressionLevel) -> Self {
        Self {
            window_size,
            hash_bits,
            hash_fn: crate::hash::HashFn::zlib(hash_bits),
            level,
            chain_limit: None,
        }
    }

    /// Effective matcher tuning: the level preset with the run-time chain
    /// override applied (a zero override is clamped to one iteration).
    pub fn effective_tuning(&self) -> LevelTuning {
        let mut t = self.level.tuning();
        if let Some(limit) = self.chain_limit {
            t.max_chain = limit.max(1);
        }
        t
    }

    /// Validate the invariants the hardware relies on.
    ///
    /// # Panics
    /// Panics on non-power-of-two or out-of-range window, or hash widths
    /// outside 8..=20 bits (the BRAM-feasible range).
    pub fn validate(&self) {
        assert!(
            self.window_size.is_power_of_two(),
            "window size {} must be a power of two",
            self.window_size
        );
        assert!(
            (256..=32_768).contains(&self.window_size),
            "window size {} outside 256..=32768",
            self.window_size
        );
        assert!((8..=20).contains(&self.hash_bits), "hash bits {} outside 8..=20", self.hash_bits);
    }

    /// log2(window_size): the dictionary address width in bits.
    pub fn window_bits(&self) -> u32 {
        self.window_size.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fast_is_valid() {
        let p = LzssParams::paper_fast();
        p.validate();
        assert_eq!(p.window_size, 4_096);
        assert_eq!(p.hash_bits, 15);
        assert_eq!(p.window_bits(), 12);
    }

    #[test]
    fn level_tunings_are_ordered() {
        let min = CompressionLevel::Min.tuning();
        let med = CompressionLevel::Medium.tuning();
        let max = CompressionLevel::Max.tuning();
        assert!(min.max_chain < med.max_chain && med.max_chain < max.max_chain);
        assert!(!min.lazy && med.lazy && max.lazy);
        assert!(min.nice_length < max.nice_length);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_window_rejected() {
        LzssParams::new(3_000, 12, CompressionLevel::Min).validate();
    }

    #[test]
    #[should_panic(expected = "outside 8..=20")]
    fn tiny_hash_rejected() {
        LzssParams::new(4_096, 4, CompressionLevel::Min).validate();
    }

    #[test]
    fn min_lookahead_matches_paper() {
        // MAX_MATCH + MIN_MATCH + 1 = 258 + 3 + 1.
        assert_eq!(MIN_LOOKAHEAD, 262);
    }
}
