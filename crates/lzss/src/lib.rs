//! LZSS algorithm layer: parameters, hashing, the software reference
//! compressor, the token decoder, and the embedded-CPU cost model.
//!
//! The paper's §III defines the data format (literal / copy commands over a
//! sliding window with ZLib's head/next hash-chain search); this crate
//! implements that algorithm in ordinary software form:
//!
//! * [`params`] — the tunable knobs the paper exposes as generics
//!   (dictionary size, hash bits, matching iteration limit, …) plus the
//!   min/medium/max level presets used in Figure 4.
//! * [`hash`] — the 3-byte rolling hash (ZLib's shift-xor and a
//!   multiplicative alternative; the "exact hash function" is a generic in
//!   the paper's design).
//! * [`mod@reference`] — a ZLib-algorithm-equivalent compressor (greedy and lazy
//!   variants) producing [`lzfpga_deflate::Token`] streams. This is both the
//!   Table I software baseline and the golden model the cycle-accurate
//!   hardware simulation is checked against token-for-token.
//! * [`decoder`] — expands token streams back to bytes, enforcing window
//!   discipline; used for round-trip verification everywhere.
//! * [`classic`] — the *original* fixed-field LZSS wire format \[4\], for
//!   quantifying what the Deflate/Huffman back-end buys.
//! * [`cost`] — an instrumented operation-count model of the compressor on a
//!   PowerPC-440-class embedded CPU (the paper's 400 MHz SW baseline),
//!   documented in `DESIGN.md` as a substitution for the physical board.
//! * [`turbo`] — the same algorithm as [`mod@reference`], token-for-token,
//!   but with a vector match kernel and reusable arenas: the software fast
//!   path the throughput harness measures.
//! * [`simd`] — the match-length kernels behind [`turbo`]: runtime-dispatched
//!   SSE2/AVX2/NEON compares with the word-at-a-time scalar path as the
//!   guaranteed fallback, all returning identical lengths.
//! * [`batch`] — the multi-lane driver: N independent streams interleaved
//!   through one kernel invocation loop, token-identical per lane to
//!   [`turbo::TurboEngine`].
//!
//! Unsafe code is denied crate-wide and allowed in exactly one place: the
//! `std::arch` intrinsics inside [`simd`], each load justified by the
//! in-bounds argument documented there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod classic;
pub mod cost;
pub mod decoder;
pub mod hash;
pub mod params;
pub mod reference;
pub mod simd;
pub mod turbo;

pub use analysis::{analyze_tokens, TokenStats};
pub use batch::BatchEngine;
pub use decoder::{decode_tokens, DecodeError};
pub use hash::HashFn;
pub use params::{CompressionLevel, LzssParams};
pub use reference::{compress, compress_with_probe, Probe};
pub use simd::MatchKernel;
pub use turbo::TurboEngine;
