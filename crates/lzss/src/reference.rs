//! ZLib-algorithm-equivalent software LZSS compressor.
//!
//! This is the Table I software baseline *and* the golden model for the
//! cycle-accurate hardware simulation: with [`CompressionLevel::Min`](crate::params::CompressionLevel::Min) the
//! greedy path below follows zlib's `deflate_fast` decision-for-decision
//! (head/next chains, newest-candidate-first walk, `max_insert_length` skip
//! rule), which is exactly the algorithm the paper moved into hardware. The
//! hardware model in `lzfpga-core` is tested to produce token-for-token
//! identical output against this function.
//!
//! The lazy path (`Medium`/`Max`) mirrors zlib's `deflate_slow` one-position
//! deferral, providing the Fig. 4 "max compression level" end point.
//!
//! Every interesting dynamic operation is reported through the [`Probe`]
//! trait so the embedded-CPU cost model in [`crate::cost`] can count work
//! without a second implementation of the algorithm.

use crate::hash::HASH_BYTES;
use crate::params::{LzssParams, MIN_LOOKAHEAD};
use lzfpga_deflate::fixed::{MAX_MATCH, MIN_MATCH};
use lzfpga_deflate::token::Token;

/// Matches at exactly the minimum length are not worth emitting when the
/// distance is large (zlib's `TOO_FAR`); applied only on the lazy path, as in
/// zlib.
const TOO_FAR: u32 = 4_096;

/// Observer of the compressor's dynamic operations (all hooks default to
/// no-ops; the optimiser removes them entirely for [`NoProbe`]).
pub trait Probe {
    /// A 3-byte hash was computed.
    #[inline]
    fn hash_computed(&mut self) {}
    /// A position was inserted into the head/next tables.
    #[inline]
    fn position_inserted(&mut self) {}
    /// One hash-chain candidate was fetched and considered.
    #[inline]
    fn chain_step(&mut self) {}
    /// `n` byte comparisons were performed while extending a match.
    #[inline]
    fn bytes_compared(&mut self, n: u32) {
        let _ = n;
    }
    /// A literal token was emitted.
    #[inline]
    fn literal_emitted(&mut self) {}
    /// A match token of length `len` was emitted.
    #[inline]
    fn match_emitted(&mut self, len: u32) {
        let _ = len;
    }
}

/// The no-op probe used for plain compression.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Head/prev chain tables with the hardware's zero-initialisation semantics.
///
/// BRAMs power up to zero, so a never-written head entry reads as
/// "position 0". The design does not reserve a NIL value: a candidate is
/// *valid* iff its distance from the current position lies in
/// `1..=max_distance`, and a false candidate (fresh bucket near the start of
/// the stream) simply fails the byte comparison. This is why the paper's own
/// "snowy snow" example can copy from position 0 — unlike stock zlib, whose
/// `NIL == 0` makes the first string unmatchable. Chains terminate when the
/// next link does not move strictly backwards (the hardware's relative-offset
/// next table encodes "no previous" as offset 0).
struct ChainTables {
    head: Vec<usize>,
    prev: Vec<usize>,
    wmask: usize,
}

impl ChainTables {
    fn new(params: &LzssParams) -> Self {
        Self {
            head: vec![0; 1 << params.hash_bits],
            prev: vec![0; params.window_size as usize],
            wmask: params.window_size as usize - 1,
        }
    }

    /// Insert `pos` under hash `h`; returns the previous head (the first
    /// match candidate), exactly like zlib's `INSERT_STRING`.
    #[inline]
    fn insert(&mut self, h: u32, pos: usize) -> usize {
        let old = self.head[h as usize];
        self.prev[pos & self.wmask] = old;
        self.head[h as usize] = pos;
        old
    }

    /// Next candidate on the chain after `cand`, or `None` at the chain end
    /// (a link that does not move strictly backwards).
    #[inline]
    fn chain_next(&self, cand: usize) -> Option<usize> {
        let nxt = self.prev[cand & self.wmask];
        (nxt < cand).then_some(nxt)
    }
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `limit`. Reports the number of byte comparisons to the probe (one per
/// matched byte plus the mismatching byte, as executed).
#[inline]
fn match_length<P: Probe>(data: &[u8], a: usize, b: usize, limit: u32, probe: &mut P) -> u32 {
    debug_assert!(a < b);
    let max = limit as usize;
    let mut n = 0usize;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    probe.bytes_compared((n + usize::from(n < max)) as u32);
    n as u32
}

/// Compress `data` into an LZSS token stream.
pub fn compress(data: &[u8], params: &LzssParams) -> Vec<Token> {
    compress_with_probe(data, params, &mut NoProbe)
}

/// Compress `data` with a *preset dictionary*: the window and hash chains
/// are primed with `dict` before the first byte of `data` is matched, so
/// early matches can reach back into the dictionary (zlib's
/// `deflateSetDictionary`). Only the greedy path supports priming — the
/// hardware is greedy, and that is the equivalence target.
///
/// The emitted tokens cover exactly `data`; distances may reach up to
/// `dict.len()` bytes before its start. Decode with
/// [`crate::decoder::decode_tokens_with_dict`].
///
/// # Panics
/// Panics if a lazy level is selected or the dictionary exceeds the window.
pub fn compress_with_dict(dict: &[u8], data: &[u8], params: &LzssParams) -> Vec<Token> {
    params.validate();
    let tuning = params.effective_tuning();
    assert!(!tuning.lazy, "preset dictionaries support the greedy (hardware) path only");
    assert!(
        dict.len() <= params.window_size as usize,
        "dictionary of {} bytes exceeds the {} byte window",
        dict.len(),
        params.window_size
    );
    let mut buf = Vec::with_capacity(dict.len() + data.len());
    buf.extend_from_slice(dict);
    buf.extend_from_slice(data);
    compress_greedy_from(&buf, dict.len(), params, &mut NoProbe)
}

/// Compress `data`, reporting dynamic operation counts to `probe`.
pub fn compress_with_probe<P: Probe>(
    data: &[u8],
    params: &LzssParams,
    probe: &mut P,
) -> Vec<Token> {
    params.validate();
    let tuning = params.effective_tuning();
    if tuning.lazy {
        compress_lazy(data, params, probe)
    } else {
        compress_greedy(data, params, probe)
    }
}

/// Maximum usable match distance: zlib's `MAX_DIST`, which the hardware
/// shares because its background filler may overwrite the oldest
/// `MIN_LOOKAHEAD` dictionary bytes while a match is in flight.
#[inline]
pub fn max_distance(window_size: u32) -> u32 {
    window_size - MIN_LOOKAHEAD as u32
}

/// Search the hash chain starting at `cand` for the longest match against
/// `data[pos..]`. Returns `(best_len, best_dist)`, `(0, 0)` if none.
#[allow(clippy::too_many_arguments)]
fn longest_match<P: Probe>(
    data: &[u8],
    pos: usize,
    mut cand: usize,
    tables: &ChainTables,
    max_dist: u32,
    mut chain_budget: u32,
    nice: u32,
    probe: &mut P,
) -> (u32, u32) {
    let limit = MAX_MATCH.min((data.len() - pos) as u32);
    let nice = nice.min(limit);
    let mut best_len = 0u32;
    let mut best_dist = 0u32;
    while chain_budget > 0 {
        if cand >= pos {
            // Only possible for the zero-initialised "position 0" pseudo
            // candidate seen while pos == 0.
            break;
        }
        let dist = (pos - cand) as u32;
        if dist > max_dist {
            break;
        }
        probe.chain_step();
        let len = match_length(data, cand, pos, limit, probe);
        if len > best_len {
            best_len = len;
            best_dist = dist;
            if len >= nice {
                break;
            }
        }
        match tables.chain_next(cand) {
            Some(nxt) => cand = nxt,
            None => break,
        }
        chain_budget -= 1;
    }
    (best_len, best_dist)
}

fn compress_greedy<P: Probe>(data: &[u8], params: &LzssParams, probe: &mut P) -> Vec<Token> {
    compress_greedy_from(data, 0, params, probe)
}

/// Greedy compression of `data[start..]` with `data[..start]` serving as a
/// pre-inserted dictionary (every hashable dictionary position enters the
/// chains first, exactly like zlib's `deflateSetDictionary`).
fn compress_greedy_from<P: Probe>(
    data: &[u8],
    start: usize,
    params: &LzssParams,
    probe: &mut P,
) -> Vec<Token> {
    let tuning = params.effective_tuning();
    let max_dist = max_distance(params.window_size);
    let mut tables = ChainTables::new(params);
    let mut out = Vec::new();
    let n = data.len();
    for k in 0..start.min(n.saturating_sub(HASH_BYTES - 1)) {
        let hk = params.hash_fn.hash_at(data, k);
        probe.hash_computed();
        tables.insert(hk, k);
        probe.position_inserted();
    }
    let mut pos = start;

    while pos < n {
        if n - pos < HASH_BYTES {
            // Tail too short to hash: emit the remaining bytes as literals.
            out.push(Token::Literal(data[pos]));
            probe.literal_emitted();
            pos += 1;
            continue;
        }
        let h = params.hash_fn.hash_at(data, pos);
        probe.hash_computed();
        let cand = tables.insert(h, pos);
        probe.position_inserted();

        let (best_len, best_dist) = longest_match(
            data,
            pos,
            cand,
            &tables,
            max_dist,
            tuning.max_chain,
            tuning.nice_length,
            probe,
        );

        if best_len >= MIN_MATCH {
            out.push(Token::new_match(best_dist, best_len));
            probe.match_emitted(best_len);
            // zlib deflate_fast: insert every position of a short match;
            // skip hash maintenance entirely for long ones.
            if best_len <= tuning.max_lazy {
                for k in pos + 1..pos + best_len as usize {
                    if k + HASH_BYTES <= n {
                        let hk = params.hash_fn.hash_at(data, k);
                        probe.hash_computed();
                        tables.insert(hk, k);
                        probe.position_inserted();
                    }
                }
            }
            pos += best_len as usize;
        } else {
            out.push(Token::Literal(data[pos]));
            probe.literal_emitted();
            pos += 1;
        }
    }
    out
}

fn compress_lazy<P: Probe>(data: &[u8], params: &LzssParams, probe: &mut P) -> Vec<Token> {
    let tuning = params.effective_tuning();
    let max_dist = max_distance(params.window_size);
    let mut tables = ChainTables::new(params);
    let mut out = Vec::new();
    let n = data.len();
    let mut pos = 0usize;

    // Deferred previous-position match, zlib deflate_slow style.
    let mut prev_len = 0u32;
    let mut prev_dist = 0u32;
    let mut have_prev_literal = false; // data[pos-1] pending as a literal

    while pos < n {
        if n - pos < HASH_BYTES {
            if prev_len >= MIN_MATCH {
                out.push(Token::new_match(prev_dist, prev_len));
                probe.match_emitted(prev_len);
                let skip = prev_len as usize - 1;
                prev_len = 0;
                have_prev_literal = false;
                pos += skip;
                continue;
            }
            if have_prev_literal {
                out.push(Token::Literal(data[pos - 1]));
                probe.literal_emitted();
                have_prev_literal = false;
            }
            out.push(Token::Literal(data[pos]));
            probe.literal_emitted();
            pos += 1;
            continue;
        }

        let h = params.hash_fn.hash_at(data, pos);
        probe.hash_computed();
        let cand = tables.insert(h, pos);
        probe.position_inserted();

        // Reduce effort when the pending match is already good (zlib).
        let budget =
            if prev_len >= tuning.good_length { tuning.max_chain >> 2 } else { tuning.max_chain };
        let (mut cur_len, cur_dist) = if prev_len < tuning.max_lazy {
            longest_match(
                data,
                pos,
                cand,
                &tables,
                max_dist,
                budget.max(1),
                tuning.nice_length,
                probe,
            )
        } else {
            (0, 0)
        };
        if cur_len == MIN_MATCH && cur_dist > TOO_FAR {
            cur_len = 0;
        }

        if prev_len >= MIN_MATCH && cur_len <= prev_len {
            // The deferred match wins: emit it, covering data[pos-1..].
            out.push(Token::new_match(prev_dist, prev_len));
            probe.match_emitted(prev_len);
            // Insert the remaining covered positions (pos .. pos-1+prev_len),
            // pos itself is already inserted.
            for k in pos + 1..pos - 1 + prev_len as usize {
                if k + HASH_BYTES <= n {
                    let hk = params.hash_fn.hash_at(data, k);
                    probe.hash_computed();
                    tables.insert(hk, k);
                    probe.position_inserted();
                }
            }
            pos += prev_len as usize - 1;
            prev_len = 0;
            have_prev_literal = false;
        } else {
            if have_prev_literal {
                out.push(Token::Literal(data[pos - 1]));
                probe.literal_emitted();
            }
            prev_len = cur_len;
            prev_dist = cur_dist;
            have_prev_literal = true;
            pos += 1;
        }
    }
    if have_prev_literal {
        out.push(Token::Literal(data[n - 1]));
        probe.literal_emitted();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::decode_tokens;
    use crate::params::CompressionLevel;

    fn roundtrip(data: &[u8], params: &LzssParams) {
        let tokens = compress(data, params);
        let decoded = decode_tokens(&tokens, params.window_size).unwrap();
        assert_eq!(decoded, data, "round trip failed for {params:?}");
    }

    fn fast() -> LzssParams {
        LzssParams::paper_fast()
    }

    #[test]
    fn empty_input() {
        assert!(compress(b"", &fast()).is_empty());
    }

    #[test]
    fn short_inputs_become_literals() {
        for data in [&b"a"[..], b"ab", b"abc"] {
            let tokens = compress(data, &fast());
            assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
            roundtrip(data, &fast());
        }
    }

    #[test]
    fn snowy_snow_finds_the_papers_match() {
        let tokens = compress(b"snowy snow", &fast());
        assert_eq!(tokens.len(), 7, "{tokens:?}");
        assert_eq!(tokens[6], Token::Match { dist: 6, len: 4 });
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = vec![b'z'; 10_000];
        let tokens = compress(&data, &fast());
        // One literal then max-length matches: ~40 tokens.
        assert!(tokens.len() < 64, "{} tokens", tokens.len());
        roundtrip(&data, &fast());
    }

    #[test]
    fn all_levels_round_trip_on_mixed_data() {
        let mut data = Vec::new();
        for i in 0..3_000u32 {
            data.extend_from_slice(format!("entry {} value {}\n", i % 97, i * 7 % 13).as_bytes());
        }
        for level in [CompressionLevel::Min, CompressionLevel::Medium, CompressionLevel::Max] {
            let params = LzssParams::new(4_096, 15, level);
            roundtrip(&data, &params);
        }
    }

    #[test]
    fn higher_levels_compress_at_least_as_well() {
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(format!("the quick brown fox {} jumps\n", i % 31).as_bytes());
        }
        let count = |level| {
            let params = LzssParams::new(8_192, 15, level);
            let tokens = compress(&data, &params);
            // Compare by encoded size proxy: literals cost ~1, matches ~2.
            tokens
                .iter()
                .map(|t| match t {
                    Token::Literal(_) => 1usize,
                    Token::Match { .. } => 2,
                })
                .sum::<usize>()
        };
        let min = count(CompressionLevel::Min);
        let max = count(CompressionLevel::Max);
        assert!(max <= min, "max level {max} worse than min {min}");
    }

    #[test]
    fn window_limit_respected() {
        // Two identical blocks separated by more than the window.
        let block: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let mut data = block.clone();
        data.extend(std::iter::repeat_n(b'.', 5_000));
        data.extend_from_slice(&block);
        let params = LzssParams::new(1_024, 12, CompressionLevel::Min);
        let tokens = compress(&data, &params);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!(*dist <= max_distance(1_024), "dist {dist} escapes window");
            }
        }
        roundtrip(&data, &params);
    }

    #[test]
    fn incompressible_data_is_all_literals_and_round_trips() {
        // A de Bruijn-ish byte sequence with no 3-byte repeats in range.
        let mut data = Vec::new();
        let mut x = 1u32;
        for _ in 0..4_096 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.push((x >> 24) as u8);
        }
        roundtrip(&data, &fast());
    }

    #[test]
    fn greedy_matches_are_window_and_length_legal() {
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            data.push((i * i % 7 + i % 3) as u8 + b'a');
        }
        let params = LzssParams::new(2_048, 13, CompressionLevel::Min);
        for t in compress(&data, &params) {
            if let Token::Match { dist, len } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
                assert!(dist >= 1 && dist <= max_distance(2_048));
            }
        }
    }

    #[test]
    fn probe_counts_are_consistent() {
        #[derive(Default)]
        struct Counting {
            literals: u64,
            matches: u64,
            match_bytes: u64,
            hashes: u64,
            inserts: u64,
        }
        impl Probe for Counting {
            fn literal_emitted(&mut self) {
                self.literals += 1;
            }
            fn match_emitted(&mut self, len: u32) {
                self.matches += 1;
                self.match_bytes += u64::from(len);
            }
            fn hash_computed(&mut self) {
                self.hashes += 1;
            }
            fn position_inserted(&mut self) {
                self.inserts += 1;
            }
        }
        let data = b"abcabcabcabc xyz abcabc xyz ".repeat(50);
        let mut probe = Counting::default();
        let tokens = compress_with_probe(&data, &fast(), &mut probe);
        let lit_count = tokens.iter().filter(|t| matches!(t, Token::Literal(_))).count() as u64;
        let match_count = tokens.len() as u64 - lit_count;
        assert_eq!(probe.literals, lit_count);
        assert_eq!(probe.matches, match_count);
        assert_eq!(probe.inserts, probe.hashes, "every computed hash is inserted in greedy mode");
        // Coverage: literals + match bytes == input length.
        assert_eq!(probe.literals + probe.match_bytes, data.len() as u64);
    }

    #[test]
    fn lazy_mode_defers_to_better_matches() {
        // Construct data where greedy takes a 3-byte match but lazy finds a
        // longer one starting one byte later:
        //   dictionary: "abc" ... "bcdefgh"
        //   cursor:     "abcdefgh"
        let data = b"abc....bcdefgh....abcdefgh".to_vec();
        let greedy = compress(&data, &LzssParams::new(4_096, 15, CompressionLevel::Min));
        let lazy = compress(&data, &LzssParams::new(4_096, 15, CompressionLevel::Max));
        let cost = |tokens: &[Token]| {
            tokens
                .iter()
                .map(|t| match t {
                    Token::Literal(_) => 9usize,
                    Token::Match { .. } => 14,
                })
                .sum::<usize>()
        };
        assert!(cost(&lazy) <= cost(&greedy));
        assert_eq!(decode_tokens(&lazy, 4_096).unwrap(), data);
    }

    #[test]
    fn lazy_mode_tail_handling() {
        // Exercise the < HASH_BYTES tail with a pending match and a pending
        // literal.
        for tail in 0..4usize {
            let mut data = b"qwertyqwerty".to_vec();
            data.extend(std::iter::repeat_n(b'#', tail));
            let params = LzssParams::new(1_024, 12, CompressionLevel::Max);
            roundtrip(&data, &params);
        }
    }
}
