//! Embedded-CPU cost model for the Table I software baseline.
//!
//! The paper's baseline is stock ZLib running on the 400 MHz PowerPC 440
//! embedded in the Virtex-5 FX70T, measured at 2.8–3.3 MB/s on the two data
//! sets. We do not have that board, so — per the substitution rule in
//! `DESIGN.md` — the baseline is reproduced by *counting the algorithm's
//! dynamic operations* (via [`crate::reference::Probe`]) and charging each
//! class a cycle cost calibrated to a PPC440-class core: in-order, 32 KB
//! caches, no L2, blocking loads to DDR2.
//!
//! The constants below are the model, not measurements; they were chosen so
//! the headline lands in the paper's 2.5–3.5 MB/s band for text-like data at
//! the fast preset, and the *relative* effects (bigger tables → more cache
//! misses → slower; deeper chains → slower) follow from the structure rather
//! than from tuning. All Table I/Fig. 4 claims in `EXPERIMENTS.md` cite this
//! model explicitly.

use crate::params::LzssParams;
use crate::reference::{compress_with_probe, Probe};
use lzfpga_deflate::token::Token;

/// PPC440 core clock in Hz (the paper's SW platform clock).
pub const PPC440_HZ: f64 = 400.0e6;

/// Data-cache capacity assumed for locality modelling (PPC440: 32 KB).
const DCACHE_BYTES: f64 = 32.0 * 1024.0;

/// Cycle charge per operation class. Loads that walk the hash tables are
/// charged a miss surcharge scaled by how badly the tables overflow the
/// d-cache (`table_bytes / DCACHE_BYTES`, clamped).
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Per input byte: window copy, pointer bookkeeping, loop control.
    pub per_byte: f64,
    /// Computing one 3-byte hash (shift/xor chain + masks).
    pub hash: f64,
    /// Inserting a position (two dependent stores into head/prev).
    pub insert: f64,
    /// Following one chain link (dependent load, usually cold).
    pub chain_step: f64,
    /// Comparing one byte during match extension.
    pub compare_byte: f64,
    /// Emitting a literal (fixed-Huffman bit output).
    pub emit_literal: f64,
    /// Emitting a match (length/dist code lookup + bit output).
    pub emit_match: f64,
    /// Cache-miss surcharge applied to insert and chain-step accesses when
    /// the tables overflow the d-cache (cycles per likely-missing access).
    pub miss_penalty: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // In-order core; DDR2 miss latency is ~70 core cycles at 400 MHz
        // (the ML-507 memory subsystem runs far below the core clock).
        // per_byte folds in zlib's fill_window copies, Adler-32 over every
        // input byte, and stream-API bookkeeping — all of which the paper's
        // PPC measurement includes.
        Self {
            per_byte: 30.0,
            hash: 12.0,
            insert: 20.0,
            chain_step: 30.0,
            compare_byte: 6.0,
            emit_literal: 40.0,
            emit_match: 90.0,
            miss_penalty: 70.0,
        }
    }
}

/// Operation counts gathered from one compression run.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpCounts {
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Hash computations.
    pub hashes: u64,
    /// Head/prev insertions.
    pub inserts: u64,
    /// Chain links followed.
    pub chain_steps: u64,
    /// Bytes compared during match extension.
    pub compared_bytes: u64,
    /// Literal tokens emitted.
    pub literals: u64,
    /// Match tokens emitted.
    pub matches: u64,
    /// Total bytes covered by matches.
    pub match_bytes: u64,
}

impl Probe for OpCounts {
    fn hash_computed(&mut self) {
        self.hashes += 1;
    }
    fn position_inserted(&mut self) {
        self.inserts += 1;
    }
    fn chain_step(&mut self) {
        self.chain_steps += 1;
    }
    fn bytes_compared(&mut self, n: u32) {
        self.compared_bytes += u64::from(n);
    }
    fn literal_emitted(&mut self) {
        self.literals += 1;
    }
    fn match_emitted(&mut self, len: u32) {
        self.matches += 1;
        self.match_bytes += u64::from(len);
    }
}

/// Result of a modelled software compression run.
#[derive(Debug, Clone)]
pub struct SoftwareEstimate {
    /// The compressed token stream (identical to [`crate::reference::compress`]).
    pub tokens: Vec<Token>,
    /// Dynamic operation counts.
    pub ops: OpCounts,
    /// Modelled CPU cycles.
    pub cycles: f64,
    /// Modelled throughput in MB/s at [`PPC440_HZ`] (MB = 1e6 bytes, as in
    /// the paper's tables).
    pub mb_per_s: f64,
}

/// Probability that a random access into `table_bytes` of state misses the
/// d-cache; saturates at 0.85 (some accesses always hit due to skew).
fn miss_probability(table_bytes: f64) -> f64 {
    if table_bytes <= DCACHE_BYTES {
        // Tables that fit still contend with window/output data: small floor.
        0.05
    } else {
        (1.0 - DCACHE_BYTES / table_bytes).min(0.85)
    }
}

/// Bytes of chain-table state the compressor touches for `params`.
fn table_bytes(params: &LzssParams) -> f64 {
    // head: 2^H entries x 2 bytes; prev: W entries x 2 bytes (zlib's layout).
    let head = (1u64 << params.hash_bits) as f64 * 2.0;
    let prev = f64::from(params.window_size) * 2.0;
    head + prev
}

/// Run the reference compressor under the cost model.
pub fn estimate_software(data: &[u8], params: &LzssParams) -> SoftwareEstimate {
    estimate_software_with(data, params, &CostWeights::default())
}

/// As [`estimate_software`] with explicit weights (for sensitivity tests).
pub fn estimate_software_with(
    data: &[u8],
    params: &LzssParams,
    w: &CostWeights,
) -> SoftwareEstimate {
    let mut ops = OpCounts { input_bytes: data.len() as u64, ..OpCounts::default() };
    let tokens = compress_with_probe(data, params, &mut ops);
    let miss = miss_probability(table_bytes(params));
    let table_access_cost = w.miss_penalty * miss;
    let cycles = w.per_byte * ops.input_bytes as f64
        + w.hash * ops.hashes as f64
        + (w.insert + table_access_cost) * ops.inserts as f64
        + (w.chain_step + table_access_cost) * ops.chain_steps as f64
        + w.compare_byte * ops.compared_bytes as f64
        + w.emit_literal * ops.literals as f64
        + w.emit_match * ops.matches as f64;
    let seconds = cycles / PPC440_HZ;
    let mb_per_s = if seconds > 0.0 { ops.input_bytes as f64 / 1e6 / seconds } else { 0.0 };
    SoftwareEstimate { tokens, ops, cycles, mb_per_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CompressionLevel, LzssParams};

    fn sample_text() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..4_000u32 {
            data.extend_from_slice(
                format!("line {} of the structured log sample, code {}\n", i, i * 31 % 997)
                    .as_bytes(),
            );
        }
        data
    }

    #[test]
    fn estimate_is_positive_and_consistent() {
        let params = LzssParams::paper_fast();
        let data = sample_text();
        let est = estimate_software(&data, &params);
        assert!(est.cycles > 0.0);
        assert!(est.mb_per_s > 0.0);
        assert_eq!(est.ops.input_bytes, data.len() as u64);
        assert_eq!(
            est.ops.literals + est.ops.match_bytes,
            data.len() as u64,
            "tokens must cover the input exactly"
        );
    }

    #[test]
    fn throughput_in_papers_band_for_text() {
        // The model must land in the PPC440 ballpark: low single-digit MB/s
        // for text-like data at the fast preset (paper: 2.8-3.3 MB/s).
        let est = estimate_software(&sample_text(), &LzssParams::paper_fast());
        assert!(
            (1.0..8.0).contains(&est.mb_per_s),
            "modelled SW speed {} MB/s outside sanity band",
            est.mb_per_s
        );
    }

    #[test]
    fn max_level_is_much_slower() {
        let data = sample_text();
        let fast = estimate_software(&data, &LzssParams::new(4_096, 15, CompressionLevel::Min));
        let best = estimate_software(&data, &LzssParams::new(4_096, 15, CompressionLevel::Max));
        assert!(
            best.mb_per_s < fast.mb_per_s,
            "max level should be slower: {} vs {}",
            best.mb_per_s,
            fast.mb_per_s
        );
    }

    #[test]
    fn tokens_match_plain_compress() {
        let data = sample_text();
        let params = LzssParams::paper_fast();
        let est = estimate_software(&data, &params);
        assert_eq!(est.tokens, crate::reference::compress(&data, &params));
    }

    #[test]
    fn bigger_tables_raise_miss_probability() {
        assert!(miss_probability(8.0 * 1024.0) < miss_probability(256.0 * 1024.0));
        assert!(miss_probability(1e9) <= 0.85);
    }

    #[test]
    fn empty_input_yields_zero_throughput_without_panic() {
        let est = estimate_software(b"", &LzssParams::paper_fast());
        assert_eq!(est.ops.input_bytes, 0);
        assert_eq!(est.mb_per_s, 0.0);
    }
}
