//! Token-stream analysis: the statistics behind the design's tuning
//! constants (why `nice_length` = 8 at the fast preset, why a 4 KB window
//! captures most of the text redundancy, why fixed Huffman loses on far
//! matches).
//!
//! [`analyze_tokens`] computes match-length and distance histograms in the
//! Deflate bucket geometry (so the numbers map 1:1 onto code costs),
//! literal entropy, and coverage shares — the inputs a designer reads
//! before choosing window/hash/level parameters.

use lzfpga_deflate::token::Token;

/// Bucket boundaries for match lengths (Deflate-ish, powers of two).
pub const LEN_BUCKETS: [u32; 7] = [3, 4, 8, 16, 32, 128, 258];

/// Bucket boundaries for distances.
pub const DIST_BUCKETS: [u32; 8] = [1, 16, 64, 256, 1_024, 4_096, 16_384, 32_768];

/// Aggregated statistics of a token stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenStats {
    /// Literal tokens.
    pub literals: u64,
    /// Match tokens.
    pub matches: u64,
    /// Bytes covered by matches.
    pub match_bytes: u64,
    /// Match count per [`LEN_BUCKETS`] bucket (bucket i covers lengths
    /// `LEN_BUCKETS[i]..LEN_BUCKETS[i+1]`, last bucket is exact 258).
    pub len_histogram: [u64; LEN_BUCKETS.len()],
    /// Match count per [`DIST_BUCKETS`] bucket.
    pub dist_histogram: [u64; DIST_BUCKETS.len()],
    /// Shannon entropy of the literal bytes, bits per literal.
    pub literal_entropy_bits: f64,
    /// Mean match length (0 when no matches).
    pub mean_match_len: f64,
    /// Mean match distance (0 when no matches).
    pub mean_match_dist: f64,
}

impl TokenStats {
    /// Fraction of output bytes produced by matches.
    pub fn match_coverage(&self) -> f64 {
        let total = self.literals + self.match_bytes;
        if total == 0 {
            0.0
        } else {
            self.match_bytes as f64 / total as f64
        }
    }

    /// A lower bound (bits) for any entropy coder over this stream that
    /// codes literals independently: literal entropy + 1 flag bit per
    /// token, matches charged their fixed-field minimum.
    pub fn naive_lower_bound_bits(&self) -> f64 {
        self.literals as f64 * (self.literal_entropy_bits + 1.0)
            + self.matches as f64 * (1.0 + 15.0 + 8.0)
    }
}

fn bucket_of(value: u32, buckets: &[u32]) -> usize {
    let mut idx = 0;
    for (i, &b) in buckets.iter().enumerate() {
        if value >= b {
            idx = i;
        }
    }
    idx
}

/// Analyze a token stream.
pub fn analyze_tokens(tokens: &[Token]) -> TokenStats {
    let mut literals = 0u64;
    let mut matches = 0u64;
    let mut match_bytes = 0u64;
    let mut len_histogram = [0u64; LEN_BUCKETS.len()];
    let mut dist_histogram = [0u64; DIST_BUCKETS.len()];
    let mut byte_freq = [0u64; 256];
    let mut len_sum = 0u64;
    let mut dist_sum = 0u64;
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                literals += 1;
                byte_freq[b as usize] += 1;
            }
            Token::Match { dist, len } => {
                matches += 1;
                match_bytes += u64::from(len);
                len_sum += u64::from(len);
                dist_sum += u64::from(dist);
                len_histogram[bucket_of(len, &LEN_BUCKETS)] += 1;
                dist_histogram[bucket_of(dist, &DIST_BUCKETS)] += 1;
            }
        }
    }
    let literal_entropy_bits = if literals == 0 {
        0.0
    } else {
        let n = literals as f64;
        byte_freq
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / n;
                -p * p.log2()
            })
            .sum()
    };
    TokenStats {
        literals,
        matches,
        match_bytes,
        len_histogram,
        dist_histogram,
        literal_entropy_bits,
        mean_match_len: if matches == 0 { 0.0 } else { len_sum as f64 / matches as f64 },
        mean_match_dist: if matches == 0 { 0.0 } else { dist_sum as f64 / matches as f64 },
    }
}

/// Render the histograms as a fixed-width report (used by the `token-stats`
/// experiment).
pub fn render_stats(stats: &TokenStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "literals {} | matches {} | coverage {:.1}% | mean len {:.1} | mean dist {:.0} | literal H {:.2} b\n",
        stats.literals,
        stats.matches,
        stats.match_coverage() * 100.0,
        stats.mean_match_len,
        stats.mean_match_dist,
        stats.literal_entropy_bits
    ));
    out.push_str("  len buckets : ");
    for (i, &b) in LEN_BUCKETS.iter().enumerate() {
        out.push_str(&format!("{b}+:{} ", stats.len_histogram[i]));
    }
    out.push_str("\n  dist buckets: ");
    for (i, &b) in DIST_BUCKETS.iter().enumerate() {
        out.push_str(&format!("{b}+:{} ", stats.dist_histogram[i]));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LzssParams;
    use crate::reference::compress;

    #[test]
    fn empty_stream() {
        let s = analyze_tokens(&[]);
        assert_eq!(s.literals, 0);
        assert_eq!(s.matches, 0);
        assert_eq!(s.match_coverage(), 0.0);
        assert_eq!(s.literal_entropy_bits, 0.0);
    }

    #[test]
    fn histogram_buckets_are_correct() {
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Match { dist: 1, len: 3 },
            Token::Match { dist: 15, len: 4 },
            Token::Match { dist: 16, len: 7 },
            Token::Match { dist: 4_096, len: 258 },
        ];
        let s = analyze_tokens(&tokens);
        assert_eq!(s.len_histogram[0], 1); // len 3
        assert_eq!(s.len_histogram[1], 2); // len 4..7 (4 and 7)
        assert_eq!(s.len_histogram[6], 1); // len 258
        assert_eq!(s.dist_histogram[0], 2); // dist 1..15
        assert_eq!(s.dist_histogram[1], 1); // dist 16..63
        assert_eq!(s.dist_histogram[5], 1); // dist 4096..16383
        assert_eq!(s.match_bytes, 3 + 4 + 7 + 258);
    }

    #[test]
    fn entropy_bounds() {
        // Uniform bytes → ~8 bits; constant bytes → 0 bits.
        let uniform: Vec<Token> = (0..=255u8).cycle().take(25_600).map(Token::Literal).collect();
        let s = analyze_tokens(&uniform);
        assert!((s.literal_entropy_bits - 8.0).abs() < 1e-9);
        let constant: Vec<Token> = std::iter::repeat_n(Token::Literal(b'q'), 100).collect();
        assert_eq!(analyze_tokens(&constant).literal_entropy_bits, 0.0);
    }

    #[test]
    fn real_text_statistics_are_sane() {
        let data: Vec<u8> =
            (0..40_000u32).flat_map(|i| format!("word{} ", i % 700).into_bytes()).collect();
        let tokens = compress(&data, &LzssParams::paper_fast());
        let s = analyze_tokens(&tokens);
        assert_eq!(s.literals + s.match_bytes, data.len() as u64);
        assert!(s.match_coverage() > 0.5, "{}", s.match_coverage());
        assert!(s.mean_match_len >= 3.0);
        assert!(s.literal_entropy_bits > 2.0 && s.literal_entropy_bits < 8.0);
        let rendered = render_stats(&s);
        assert!(rendered.contains("coverage"));
        assert!(rendered.contains("len buckets"));
    }

    #[test]
    fn naive_bound_is_below_fixed_huffman_cost() {
        let data: Vec<u8> =
            (0..30_000u32).flat_map(|i| format!("entry {} ", i % 321).into_bytes()).collect();
        let tokens = compress(&data, &LzssParams::paper_fast());
        let s = analyze_tokens(&tokens);
        let actual = lzfpga_deflate::encoder::fixed_block_bit_size(&tokens) as f64;
        assert!(s.naive_lower_bound_bits() < actual * 1.2);
    }
}
