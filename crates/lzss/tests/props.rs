//! Property tests on the algorithm layer: compression round trips under
//! randomised data/parameters, hash-function contracts, classic-format
//! round trips, and cost-model monotonicity. Inputs come from a seeded
//! in-repo xorshift generator so the suite is deterministic and needs no
//! external framework.

use lzfpga_deflate::token::Token;
use lzfpga_lzss::classic::{decode_classic, encode_classic, ClassicParams};
use lzfpga_lzss::cost::estimate_software;
use lzfpga_lzss::decoder::decode_tokens;
use lzfpga_lzss::hash::{HashFn, HASH_BYTES};
use lzfpga_lzss::params::{CompressionLevel, LzssParams};
use lzfpga_lzss::reference::{compress, max_distance};
use lzfpga_sim::rng::XorShift64;

const CASES: usize = 64;

fn random_params(rng: &mut XorShift64) -> LzssParams {
    let window = [1_024u32, 2_048, 4_096, 16_384][rng.below_usize(4)];
    let hash = rng.range_u32(9, 15);
    let level = [CompressionLevel::Min, CompressionLevel::Medium, CompressionLevel::Max]
        [rng.below_usize(3)];
    let hash_fn = if rng.chance(1, 2) { HashFn::multiplicative(hash) } else { HashFn::zlib(hash) };
    LzssParams { window_size: window, hash_bits: hash, hash_fn, level, chain_limit: None }
}

/// Mixed input shapes: raw noise, low-alphabet text, and repeated tiles.
fn random_input(rng: &mut XorShift64) -> Vec<u8> {
    match rng.below_usize(3) {
        0 => {
            let mut v = vec![0u8; rng.below_usize(8_000)];
            rng.fill_bytes(&mut v);
            v
        }
        1 => {
            let alphabet = [b'x', b'y', b'.'];
            (0..rng.below_usize(12_000)).map(|_| alphabet[rng.below_usize(3)]).collect()
        }
        _ => {
            let mut tile = vec![0u8; 1 + rng.below_usize(63)];
            rng.fill_bytes(&mut tile);
            let n = 1 + rng.below_usize(199);
            tile.iter().copied().cycle().take(n * tile.len()).collect()
        }
    }
}

#[test]
fn compress_decode_round_trips() {
    let mut rng = XorShift64::new(0x1A55_0001);
    for _ in 0..CASES {
        let data = random_input(&mut rng);
        let params = random_params(&mut rng);
        let tokens = compress(&data, &params);
        assert_eq!(decode_tokens(&tokens, params.window_size).unwrap(), data);
    }
}

#[test]
fn all_matches_respect_the_window() {
    let mut rng = XorShift64::new(0x1A55_0002);
    for _ in 0..CASES {
        let data = random_input(&mut rng);
        let params = random_params(&mut rng);
        let limit = max_distance(params.window_size);
        for t in compress(&data, &params) {
            if let Token::Match { dist, len } = t {
                assert!(dist >= 1 && dist <= limit);
                assert!((3..=258).contains(&len));
            }
        }
    }
}

#[test]
fn coverage_is_exact() {
    let mut rng = XorShift64::new(0x1A55_0003);
    for _ in 0..CASES {
        let data = random_input(&mut rng);
        let params = random_params(&mut rng);
        let covered: u64 = compress(&data, &params)
            .iter()
            .map(|t| match *t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => u64::from(len),
            })
            .sum();
        assert_eq!(covered, data.len() as u64);
    }
}

#[test]
fn hash_values_stay_in_declared_range() {
    let mut rng = XorShift64::new(0x1A55_0004);
    for _ in 0..CASES {
        let bytes = [rng.next_u8(), rng.next_u8(), rng.next_u8()];
        let bits = rng.range_u32(8, 16);
        for f in [HashFn::zlib(bits), HashFn::multiplicative(bits)] {
            let h = f.hash3(bytes[0], bytes[1], bytes[2]);
            assert!(h < (1 << bits), "{f:?}: {h}");
        }
    }
}

#[test]
fn hash_at_matches_hash3() {
    let mut rng = XorShift64::new(0x1A55_0005);
    for _ in 0..CASES {
        let mut data = vec![0u8; HASH_BYTES + rng.below_usize(200 - HASH_BYTES)];
        rng.fill_bytes(&mut data);
        let f = HashFn::zlib(rng.range_u32(8, 16));
        for pos in 0..=data.len() - HASH_BYTES {
            assert_eq!(f.hash_at(&data, pos), f.hash3(data[pos], data[pos + 1], data[pos + 2]));
        }
    }
}

#[test]
fn classic_format_round_trips() {
    let mut rng = XorShift64::new(0x1A55_0006);
    for _ in 0..CASES {
        let data = random_input(&mut rng);
        let params = LzssParams::new(4_096, 13, CompressionLevel::Min);
        let tokens = compress(&data, &params);
        let cp = ClassicParams::okumura();
        let bits = encode_classic(&tokens, &cp);
        assert_eq!(decode_classic(&bits, &cp).unwrap(), data);
    }
}

#[test]
fn cost_model_is_monotone_in_input() {
    let mut rng = XorShift64::new(0x1A55_0007);
    for _ in 0..CASES {
        // More data never costs fewer modelled cycles.
        let data = random_input(&mut rng);
        let params = LzssParams::paper_fast();
        let half = estimate_software(&data[..data.len() / 2], &params);
        let full = estimate_software(&data, &params);
        assert!(full.cycles >= half.cycles);
        assert_eq!(full.tokens, compress(&data, &params));
    }
}

#[test]
fn deeper_levels_never_compress_worse() {
    let mut rng = XorShift64::new(0x1A55_0008);
    for _ in 0..CASES {
        let data = random_input(&mut rng);
        let bits = |level| {
            let params = LzssParams::new(4_096, 15, level);
            lzfpga_deflate::encoder::fixed_block_bit_size(&compress(&data, &params))
        };
        let min = bits(CompressionLevel::Min);
        let max = bits(CompressionLevel::Max);
        // The lazy matcher can in principle lose a little on tiny inputs
        // but must never be more than marginally worse.
        assert!(max as f64 <= min as f64 * 1.02 + 64.0, "max {max} vs min {min}");
    }
}
