//! Property tests on the algorithm layer: compression round trips under
//! arbitrary data/parameters, hash-function contracts, classic-format
//! round trips, and cost-model monotonicity.

use lzfpga_lzss::classic::{decode_classic, encode_classic, ClassicParams};
use lzfpga_lzss::cost::estimate_software;
use lzfpga_lzss::decoder::decode_tokens;
use lzfpga_lzss::hash::{HashFn, HASH_BYTES};
use lzfpga_lzss::params::{CompressionLevel, LzssParams};
use lzfpga_lzss::reference::{compress, max_distance};
use lzfpga_deflate::token::Token;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = LzssParams> {
    (
        prop_oneof![Just(1_024u32), Just(2_048), Just(4_096), Just(16_384)],
        9u32..=15,
        prop_oneof![
            Just(CompressionLevel::Min),
            Just(CompressionLevel::Medium),
            Just(CompressionLevel::Max)
        ],
        any::<bool>(),
    )
        .prop_map(|(window, hash, level, mult)| LzssParams {
            window_size: window,
            hash_bits: hash,
            hash_fn: if mult { HashFn::multiplicative(hash) } else { HashFn::zlib(hash) },
            level,
            chain_limit: None,
        })
}

fn inputs() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..8_000),
        proptest::collection::vec(prop_oneof![Just(b'x'), Just(b'y'), Just(b'.')], 0..12_000),
        (1usize..200, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(n, tile)| tile.iter().copied().cycle().take(n * tile.len()).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn compress_decode_round_trips(data in inputs(), params in params_strategy()) {
        let tokens = compress(&data, &params);
        prop_assert_eq!(decode_tokens(&tokens, params.window_size).unwrap(), data);
    }

    #[test]
    fn all_matches_respect_the_window(data in inputs(), params in params_strategy()) {
        let limit = max_distance(params.window_size);
        for t in compress(&data, &params) {
            if let Token::Match { dist, len } = t {
                prop_assert!(dist >= 1 && dist <= limit);
                prop_assert!((3..=258).contains(&len));
            }
        }
    }

    #[test]
    fn coverage_is_exact(data in inputs(), params in params_strategy()) {
        let covered: u64 = compress(&data, &params)
            .iter()
            .map(|t| match *t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => u64::from(len),
            })
            .sum();
        prop_assert_eq!(covered, data.len() as u64);
    }

    #[test]
    fn hash_values_stay_in_declared_range(bytes in any::<[u8; 3]>(), bits in 8u32..=16) {
        for f in [HashFn::zlib(bits), HashFn::multiplicative(bits)] {
            let h = f.hash3(bytes[0], bytes[1], bytes[2]);
            prop_assert!(h < (1 << bits), "{f:?}: {h}");
        }
    }

    #[test]
    fn hash_at_matches_hash3(data in proptest::collection::vec(any::<u8>(), HASH_BYTES..200),
                             bits in 8u32..=16) {
        let f = HashFn::zlib(bits);
        for pos in 0..=data.len() - HASH_BYTES {
            prop_assert_eq!(
                f.hash_at(&data, pos),
                f.hash3(data[pos], data[pos + 1], data[pos + 2])
            );
        }
    }

    #[test]
    fn classic_format_round_trips(data in inputs()) {
        let params = LzssParams::new(4_096, 13, CompressionLevel::Min);
        let tokens = compress(&data, &params);
        let cp = ClassicParams::okumura();
        let bits = encode_classic(&tokens, &cp);
        prop_assert_eq!(decode_classic(&bits, &cp).unwrap(), data);
    }

    #[test]
    fn cost_model_is_monotone_in_input(data in inputs()) {
        // More data never costs fewer modelled cycles.
        let params = LzssParams::paper_fast();
        let half = estimate_software(&data[..data.len() / 2], &params);
        let full = estimate_software(&data, &params);
        prop_assert!(full.cycles >= half.cycles);
        prop_assert_eq!(full.tokens, compress(&data, &params));
    }

    #[test]
    fn deeper_levels_never_compress_worse(data in inputs()) {
        let bits = |level| {
            let params = LzssParams::new(4_096, 15, level);
            lzfpga_deflate::encoder::fixed_block_bit_size(&compress(&data, &params))
        };
        let min = bits(CompressionLevel::Min);
        let max = bits(CompressionLevel::Max);
        // The lazy matcher can in principle lose a little on tiny inputs
        // but must never be more than marginally worse.
        prop_assert!(max as f64 <= min as f64 * 1.02 + 64.0, "max {max} vs min {min}");
    }
}
