//! The structured JSONL event sink.
//!
//! A telemetry run is a sequence of self-describing events, one JSON object
//! per line: `{"event":"<kind>","seq":N, ...}`. JSONL is append-only and
//! stream-friendly (a crashed run keeps every line it got to), greps
//! cleanly, and loads into any analysis stack one line at a time — the
//! software counterpart of the hardware model's VCD change stream.

use std::io::{self, Write};

use crate::json::JsonValue;

/// Writes telemetry events as JSON Lines to any `io::Write`.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
    seq: u64,
}

impl<W: Write> JsonlWriter<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out, seq: 0 }
    }

    /// Emit one event: `kind` plus the fields of `body` (an object),
    /// stamped with a monotonically increasing `seq`.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    /// Panics if `body` is not a [`JsonValue::Object`].
    pub fn emit(&mut self, kind: &str, body: JsonValue) -> io::Result<()> {
        let JsonValue::Object(fields) = body else { panic!("JSONL event body must be an object") };
        let mut line = JsonValue::Object(Vec::with_capacity(fields.len() + 2));
        line.push("event", kind);
        line.push("seq", self.seq);
        if let JsonValue::Object(dst) = &mut line {
            dst.extend(fields);
        }
        self.seq += 1;
        writeln!(self.out, "{}", line.render())
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Flush and return the underlying writer.
    ///
    /// # Errors
    /// Propagates the flush failure.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Parse a JSONL document back into per-line values (for tests and tools).
///
/// # Errors
/// Returns the first line that fails to parse, with its 0-based index.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonValue>, (usize, crate::json::ParseError)> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, l)| crate::json::parse(l).map_err(|e| (i, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    #[test]
    fn events_are_sequenced_lines() {
        let mut sink = JsonlWriter::new(Vec::new());
        sink.emit("run_start", obj([("input_bytes", 1_024u64.into())])).unwrap();
        sink.emit("summary", obj([("ratio", 2.5.into()), ("ok", true.into())])).unwrap();
        assert_eq!(sink.emitted(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);

        let lines = parse_jsonl(&text).unwrap();
        assert_eq!(lines[0].get("event").unwrap().as_str(), Some("run_start"));
        assert_eq!(lines[0].get("seq").unwrap().as_i64(), Some(0));
        assert_eq!(lines[1].get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(lines[1].get("ratio").unwrap().as_f64(), Some(2.5));
    }

    #[test]
    fn parse_jsonl_reports_the_bad_line() {
        let err = parse_jsonl("{\"ok\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn control_characters_in_strings_stay_valid_jsonl() {
        // A hostile "filename" carrying every ASCII control character —
        // embedded newlines are the killer case for a line-oriented format:
        // an unescaped 0x0A would split one event across two lines.
        let hostile: String = (0u8..0x20).map(char::from).chain("name\u{7f}".chars()).collect();
        let mut sink = JsonlWriter::new(Vec::new());
        sink.emit("run_start", obj([("path", hostile.as_str().into())])).unwrap();
        sink.emit("summary", obj([("ok", true.into())])).unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();

        assert_eq!(text.lines().count(), 2, "control chars must not split or join lines");
        for line in text.lines() {
            assert!(
                line.bytes().all(|b| b >= 0x20),
                "emitted line contains a raw control byte: {line:?}"
            );
        }
        let lines = parse_jsonl(&text).unwrap();
        assert_eq!(lines[0].get("path").unwrap().as_str(), Some(hostile.as_str()));
    }
}
