//! Unified telemetry layer for every execution path in the workspace.
//!
//! The paper instruments its FSM down to the cycle (Figure 5); this crate
//! gives the software paths the same lens, and funnels the hardware model's
//! existing cycle taxonomy through the same sink so one report can compare
//! all three:
//!
//! * **[`probe`]** — the zero-cost-when-disabled counter interface. Hot
//!   loops are generic over [`probe::MatchProbe`]; the default
//!   [`probe::NoProbe`] monomorphizes every callback to nothing, so the
//!   uninstrumented build is bit-for-bit the old fast path. The counting
//!   implementation, [`probe::TurboCounters`], records hash probes,
//!   chain-walk lengths (as a [`histogram::Histogram`]), kernel runs,
//!   match/literal mix and bytes-per-probe.
//! * **[`spans`]** — wall-clock span timing ([`spans::SpanTimer`]) that
//!   doubles as a chrome://tracing *trace event* recorder: open the emitted
//!   file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to
//!   see workers, the stitcher and their stalls on a shared timeline, the
//!   software counterpart of the VCD waveform the hardware model exports.
//! * **[`json`]** — a dependency-free JSON value model with a renderer *and
//!   parser*, so reports can be round-tripped in tests without serde.
//! * **[`sink`]** — the structured JSONL event sink: one self-describing
//!   JSON object per line, append-friendly, greppable, machine-readable.
//! * **[`pipeline`]** — the parallel-pipeline report types (per-worker
//!   utilization, stitcher stalls, token-buffer freelist traffic).
//!
//! Everything here is plain `std`; the crate is a leaf every other crate
//! can depend on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frames;
pub mod histogram;
pub mod json;
pub mod pipeline;
pub mod probe;
pub mod range;
pub mod sink;
pub mod spans;

pub use frames::{FrameEvent, FrameOutcome};
pub use histogram::Histogram;
pub use json::JsonValue;
pub use pipeline::{PipelineTelemetry, StitcherStats, WorkerStats};
pub use probe::{MatchProbe, NoProbe, TurboCounters};
pub use range::RangeCounters;
pub use sink::{parse_jsonl, JsonlWriter};
pub use spans::{
    frame_span, span_args, stage_span, trace_events_json, SpanTimer, TraceEvent, ROOT_SPAN,
};
