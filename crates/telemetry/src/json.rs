//! Dependency-free JSON: a small value model, a renderer, and a parser.
//!
//! The workspace is hermetic (no serde), but telemetry reports must be
//! machine-readable and — per the observability test contract — *round-trip*:
//! everything the sinks emit is parsed back by [`parse`] in the test suites.
//! Integers are kept distinct from floats so cycle counts survive exactly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered with Rust's shortest round-trip representation.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        // Cycle/byte counters fit i64 in practice; degrade to float beyond.
        i64::try_from(v).map_or(JsonValue::Float(v as f64), JsonValue::Int)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::from(v as u64)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(i64::from(v))
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build an object from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl JsonValue {
    /// Append `(key, value)`; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) {
        match self {
            JsonValue::Object(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("push on non-object {other:?}"),
        }
    }

    /// Field lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer-ish number (`Int` directly, integral `Float`).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(v) => Some(v),
            JsonValue::Float(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float (`Int` widened).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // `{}` prints integral floats without a point; keep the
                    // float-ness visible so parsers round-trip the type.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser gave up at.
    pub at: usize,
    /// What it expected.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError { at: pos, msg: "trailing characters" });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(ParseError { at: *pos, msg: "unexpected token" })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError { at: *pos, msg: "unexpected end of input" }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ParseError { at: *pos, msg: "expected ':'" });
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(ParseError { at: *pos, msg: "expected ',' or '}'" }),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ParseError { at: *pos, msg: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError { at: *pos, msg: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { at: *pos, msg: "bad \\u escape" })?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our emitters.
                        out.push(
                            char::from_u32(hex)
                                .ok_or(ParseError { at: *pos, msg: "bad \\u code point" })?,
                        );
                    }
                    _ => return Err(ParseError { at: *pos, msg: "bad escape" }),
                }
            }
            Some(_) => {
                // Consume the whole unescaped run in one go. The input came
                // from a `&str` and the run is delimited by ASCII bytes, so
                // the slice is valid UTF-8 — and validating per run (not per
                // character) keeps parsing linear in the document size.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| ParseError { at: start, msg: "invalid UTF-8" })?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError { at: start, msg: "invalid number" })?;
    if is_float {
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| ParseError { at: start, msg: "invalid number" })
    } else {
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|_| ParseError { at: start, msg: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = obj([
            ("name", "chunk".into()),
            ("n", 42u64.into()),
            ("ratio", 2.5.into()),
            ("ok", true.into()),
            ("items", vec![1i64, 2, 3].into()),
        ]);
        assert_eq!(v.render(), r#"{"name":"chunk","n":42,"ratio":2.5,"ok":true,"items":[1,2,3]}"#);
    }

    #[test]
    fn escapes_and_round_trips_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}é".to_string());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn round_trips_nested_values() {
        let v = obj([
            ("null", JsonValue::Null),
            ("neg", (-7i64).into()),
            ("float", 0.125.into()),
            ("whole_float", 3.0.into()),
            ("big", u64::from(u32::MAX).into()),
            ("arr", JsonValue::Array(vec![obj([("k", "v".into())]), JsonValue::Bool(false)])),
        ]);
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        // Integer-ness survives: cycle counts must not become floats.
        assert_eq!(parsed.get("big").unwrap(), &JsonValue::Int(4_294_967_295));
        assert_eq!(parsed.get("whole_float").unwrap(), &JsonValue::Float(3.0));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":1,"b":"x","c":[1.5]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap()[0].as_f64(), Some(1.5));
        assert!(v.get("missing").is_none());
    }
}
