//! Per-frame events for the LZFC framed container.
//!
//! The container crate reports one [`FrameEvent`] per frame it writes (or
//! salvages), and the CLI forwards them through the opt-in JSONL sink so
//! frame overhead — header bytes, CRC time, codec choice, salvage skips —
//! shows up in `--metrics` output next to the compressor's own counters.
//! Keeping the type here (the dependency-free leaf crate) lets the
//! container, parallel pipeline, CLI and bench harness all share one
//! schema.

use crate::json::{obj, JsonValue};

/// What happened to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// The frame was compressed and written.
    Written,
    /// The frame decoded cleanly (strict or salvage decode).
    Recovered,
    /// Salvage could not trust the header but recovered the payload via
    /// its self-delimiting zlib stream.
    DeepRecovered,
    /// Salvage skipped the frame as damaged.
    Skipped,
}

impl FrameOutcome {
    /// Stable lowercase name used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameOutcome::Written => "written",
            FrameOutcome::Recovered => "recovered",
            FrameOutcome::DeepRecovered => "deep-recovered",
            FrameOutcome::Skipped => "skipped",
        }
    }
}

/// One frame's worth of container telemetry.
#[derive(Debug, Clone)]
pub struct FrameEvent {
    /// Frame sequence number.
    pub seq: u32,
    /// Uncompressed bytes the frame covers.
    pub uncompressed_bytes: u64,
    /// Stored payload bytes (compressed size, or raw size for raw frames).
    pub payload_bytes: u64,
    /// Payload codec name (`raw`, `fixed-zlib`, `zlib-chunk`).
    pub codec: &'static str,
    /// Time spent computing the payload and stream checksums, µs.
    pub crc_us: f64,
    /// Time spent in the match/encode stage for this frame, µs.
    pub encode_us: f64,
    /// When work on the frame started, µs since the producing writer's
    /// epoch (0 when the producer predates span tracing). Lets the obs
    /// layer rebuild a causal span tree from a finished event stream.
    pub start_us: f64,
    /// What happened to the frame.
    pub outcome: FrameOutcome,
}

impl FrameEvent {
    /// Render for the JSONL sink.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("seq", self.seq.into()),
            ("uncompressed_bytes", self.uncompressed_bytes.into()),
            ("payload_bytes", self.payload_bytes.into()),
            ("codec", self.codec.into()),
            ("crc_us", self.crc_us.into()),
            ("encode_us", self.encode_us.into()),
            ("start_us", self.start_us.into()),
            ("outcome", self.outcome.as_str().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_through_the_parser() {
        let ev = FrameEvent {
            seq: 7,
            uncompressed_bytes: 262_144,
            payload_bytes: 90_112,
            codec: "fixed-zlib",
            crc_us: 12.5,
            encode_us: 800.0,
            start_us: 40.0,
            outcome: FrameOutcome::Written,
        };
        let parsed = crate::json::parse(&ev.to_json().render()).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_i64(), Some(7));
        assert_eq!(parsed.get("codec").unwrap().as_str(), Some("fixed-zlib"));
        assert_eq!(parsed.get("outcome").unwrap().as_str(), Some("written"));
        assert_eq!(parsed.get("payload_bytes").unwrap().as_i64(), Some(90_112));
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(FrameOutcome::Written.as_str(), "written");
        assert_eq!(FrameOutcome::Recovered.as_str(), "recovered");
        assert_eq!(FrameOutcome::DeepRecovered.as_str(), "deep-recovered");
        assert_eq!(FrameOutcome::Skipped.as_str(), "skipped");
    }
}
