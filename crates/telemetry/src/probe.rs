//! Zero-cost-when-disabled counters for the software match kernel.
//!
//! The turbo engine's hot loops are generic over [`MatchProbe`]; with the
//! default [`NoProbe`] every callback monomorphizes to an empty inline
//! function, so the uninstrumented engine compiles to exactly the code it
//! had before telemetry existed — the software analogue of tying the
//! hardware's debug taps to ground. [`TurboCounters`] is the counting
//! implementation behind `--metrics`.

use crate::histogram::Histogram;
use crate::json::{obj, JsonValue};

/// Observation points inside the LZSS match loop.
///
/// All methods default to no-ops; implementations override what they need.
/// Callbacks carry enough context to derive the report metrics (bytes per
/// probe, match/literal ratio, chain-walk distribution) without the engine
/// knowing anything about reports.
pub trait MatchProbe {
    /// A position (or short-match byte) was inserted into the hash chain.
    #[inline]
    fn inserted(&mut self) {}

    /// One chain candidate was examined (the quick-reject byte compare).
    #[inline]
    fn probe(&mut self) {}

    /// The full word-at-a-time kernel ran and matched `len` bytes.
    #[inline]
    fn kernel_run(&mut self, len: u32) {
        let _ = len;
    }

    /// A chain walk finished after examining `steps` candidates.
    #[inline]
    fn chain_done(&mut self, steps: u32) {
        let _ = steps;
    }

    /// A literal token was emitted.
    #[inline]
    fn literal(&mut self) {}

    /// A match token of `len` bytes was emitted.
    #[inline]
    fn matched(&mut self, len: u32) {
        let _ = len;
    }
}

/// The disabled probe: every observation point is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl MatchProbe for NoProbe {}

/// Counting probe for the turbo engine: the Figure-5 lens for software.
#[derive(Debug, Clone, Default)]
pub struct TurboCounters {
    /// Hash-chain insertions (head-table writes).
    pub inserts: u64,
    /// Chain candidates examined (quick-reject byte compares).
    pub probes: u64,
    /// Full word-at-a-time kernel invocations (quick reject passed).
    pub kernel_runs: u64,
    /// Bytes matched across all kernel runs (including non-best candidates).
    pub kernel_bytes: u64,
    /// Literal tokens emitted.
    pub literals: u64,
    /// Match tokens emitted.
    pub matches: u64,
    /// Input bytes covered by match tokens.
    pub match_bytes: u64,
    /// Distribution of chain-walk lengths (candidates examined per search).
    pub chain_hist: Histogram,
    /// Distribution of emitted match lengths.
    pub match_len_hist: Histogram,
}

impl MatchProbe for TurboCounters {
    #[inline]
    fn inserted(&mut self) {
        self.inserts += 1;
    }

    #[inline]
    fn probe(&mut self) {
        self.probes += 1;
    }

    #[inline]
    fn kernel_run(&mut self, len: u32) {
        self.kernel_runs += 1;
        self.kernel_bytes += u64::from(len);
    }

    #[inline]
    fn chain_done(&mut self, steps: u32) {
        self.chain_hist.record(u64::from(steps));
    }

    #[inline]
    fn literal(&mut self) {
        self.literals += 1;
    }

    #[inline]
    fn matched(&mut self, len: u32) {
        self.matches += 1;
        self.match_bytes += u64::from(len);
        self.match_len_hist.record(u64::from(len));
    }
}

impl TurboCounters {
    /// Input bytes accounted for by the emitted tokens; must equal the
    /// input length (the core observability invariant, enforced by tests).
    pub fn covered_bytes(&self) -> u64 {
        self.literals + self.match_bytes
    }

    /// Input bytes advanced per chain probe (∞-free; 0 when no probes).
    pub fn bytes_per_probe(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.covered_bytes() as f64 / self.probes as f64
        }
    }

    /// Match tokens per emitted token (0 when no tokens).
    pub fn match_ratio(&self) -> f64 {
        let tokens = self.literals + self.matches;
        if tokens == 0 {
            0.0
        } else {
            self.matches as f64 / tokens as f64
        }
    }

    /// Fold another engine's counters into this one (used by the parallel
    /// pipeline to aggregate per-worker engines).
    pub fn merge(&mut self, other: &TurboCounters) {
        self.inserts += other.inserts;
        self.probes += other.probes;
        self.kernel_runs += other.kernel_runs;
        self.kernel_bytes += other.kernel_bytes;
        self.literals += other.literals;
        self.matches += other.matches;
        self.match_bytes += other.match_bytes;
        self.chain_hist.merge(&other.chain_hist);
        self.match_len_hist.merge(&other.match_len_hist);
    }

    /// JSON form for the `telemetry.turbo` report section.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("inserts", self.inserts.into()),
            ("probes", self.probes.into()),
            ("kernel_runs", self.kernel_runs.into()),
            ("kernel_bytes", self.kernel_bytes.into()),
            ("literals", self.literals.into()),
            ("matches", self.matches.into()),
            ("match_bytes", self.match_bytes.into()),
            ("covered_bytes", self.covered_bytes().into()),
            ("bytes_per_probe", self.bytes_per_probe().into()),
            ("match_ratio", self.match_ratio().into()),
            ("chain_len", self.chain_hist.to_json()),
            ("match_len", self.match_len_hist.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_probe_accumulates() {
        let mut c = TurboCounters::default();
        c.inserted();
        c.probe();
        c.probe();
        c.kernel_run(12);
        c.chain_done(2);
        c.matched(12);
        c.literal();
        assert_eq!(c.inserts, 1);
        assert_eq!(c.probes, 2);
        assert_eq!(c.kernel_runs, 1);
        assert_eq!(c.kernel_bytes, 12);
        assert_eq!(c.covered_bytes(), 13);
        assert!((c.bytes_per_probe() - 6.5).abs() < 1e-12);
        assert!((c.match_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.chain_hist.count(), 1);
        assert_eq!(c.match_len_hist.sum(), 12);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = TurboCounters::default();
        a.matched(10);
        let mut b = TurboCounters::default();
        b.literal();
        b.probe();
        a.merge(&b);
        assert_eq!(a.covered_bytes(), 11);
        assert_eq!(a.probes, 1);
    }

    #[test]
    fn json_section_round_trips() {
        let mut c = TurboCounters::default();
        c.matched(100);
        c.literal();
        c.probe();
        let parsed = crate::json::parse(&c.to_json().render()).unwrap();
        assert_eq!(parsed.get("covered_bytes").unwrap().as_i64(), Some(101));
        assert_eq!(parsed.get("match_len").unwrap().get("max").unwrap().as_i64(), Some(100));
    }
}
