//! Zero-cost-when-disabled counters for the software match kernel.
//!
//! The turbo engine's hot loops are generic over [`MatchProbe`]; with the
//! default [`NoProbe`] every callback monomorphizes to an empty inline
//! function, so the uninstrumented engine compiles to exactly the code it
//! had before telemetry existed — the software analogue of tying the
//! hardware's debug taps to ground. [`TurboCounters`] is the counting
//! implementation behind `--metrics`.

use crate::histogram::Histogram;
use crate::json::{obj, JsonValue};

/// Observation points inside the LZSS match loop.
///
/// All methods default to no-ops; implementations override what they need.
/// Callbacks carry enough context to derive the report metrics (bytes per
/// probe, match/literal ratio, chain-walk distribution) without the engine
/// knowing anything about reports.
pub trait MatchProbe {
    /// A position (or short-match byte) was inserted into the hash chain.
    #[inline]
    fn inserted(&mut self) {}

    /// A bulk insert run filed `n` positions at once. The engines report
    /// their 4-wide insert loops through this batched form so the enabled
    /// probe costs one call per run instead of one per position — the same
    /// counts, a fraction of the hot-loop overhead. The default forwards
    /// to `n` [`MatchProbe::inserted`] calls so a probe overriding only
    /// the unit form still sees every event; counting probes override
    /// both.
    #[inline]
    fn inserted_n(&mut self, n: u32) {
        for _ in 0..n {
            self.inserted();
        }
    }

    /// The full word-at-a-time kernel ran and matched `len` bytes.
    #[inline]
    fn kernel_run(&mut self, len: u32) {
        let _ = len;
    }

    /// A chain walk finished after examining `steps` candidates.
    ///
    /// This is also the per-candidate accounting point: the engines count
    /// candidates locally in a register and report the total here, so the
    /// hot loop carries no per-probe callback. Implementations wanting a
    /// probe count accumulate `steps`.
    #[inline]
    fn chain_done(&mut self, steps: u32) {
        let _ = steps;
    }

    /// A literal token was emitted.
    #[inline]
    fn literal(&mut self) {}

    /// A run of `n` literal tokens was emitted. The engines accumulate
    /// literal counts in a register between match boundaries and flush
    /// through this batched form (same counts as `n` single
    /// [`MatchProbe::literal`] calls, one callback per run). The default
    /// forwards to `n` unit calls — see [`MatchProbe::inserted_n`].
    #[inline]
    fn literals_n(&mut self, n: u32) {
        for _ in 0..n {
            self.literal();
        }
    }

    /// A match token of `len` bytes was emitted.
    #[inline]
    fn matched(&mut self, len: u32) {
        let _ = len;
    }

    /// A compress run resolved its match-kernel dispatch to the named ISA
    /// path (`"scalar"`, `"sse2"`, `"avx2"`, `"neon"`). Fired once per
    /// engine run, before any token is produced.
    #[inline]
    fn kernel_select(&mut self, isa: &'static str) {
        let _ = isa;
    }

    /// One round-robin turn of the multi-lane batch driver completed with
    /// `lanes` streams still live — the batched-lane occupancy signal.
    #[inline]
    fn lanes_active(&mut self, lanes: u32) {
        let _ = lanes;
    }
}

/// The disabled probe: every observation point is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl MatchProbe for NoProbe {}

/// Counting probe for the turbo engine: the Figure-5 lens for software.
#[derive(Debug, Clone, Default)]
pub struct TurboCounters {
    /// Hash-chain insertions (head-table writes).
    pub inserts: u64,
    /// Chain candidates examined (quick-reject byte compares).
    pub probes: u64,
    /// Full word-at-a-time kernel invocations (quick reject passed).
    pub kernel_runs: u64,
    /// Bytes matched across all kernel runs (including non-best candidates).
    pub kernel_bytes: u64,
    /// Literal tokens emitted.
    pub literals: u64,
    /// Match tokens emitted.
    pub matches: u64,
    /// Input bytes covered by match tokens.
    pub match_bytes: u64,
    /// Distribution of chain-walk lengths (candidates examined per search).
    pub chain_hist: Histogram,
    /// Distribution of emitted match lengths.
    pub match_len_hist: Histogram,
    /// Engine runs dispatched to the scalar (u64) match kernel.
    pub dispatch_scalar: u64,
    /// Engine runs dispatched to the SSE2 (16-byte) match kernel.
    pub dispatch_sse2: u64,
    /// Engine runs dispatched to the AVX2 (32-byte) match kernel.
    pub dispatch_avx2: u64,
    /// Engine runs dispatched to the NEON (16-byte) match kernel.
    pub dispatch_neon: u64,
    /// Distribution of live lanes per batch round (multi-lane driver only).
    pub lane_occupancy: Histogram,
}

impl MatchProbe for TurboCounters {
    #[inline]
    fn inserted(&mut self) {
        self.inserts += 1;
    }

    #[inline]
    fn inserted_n(&mut self, n: u32) {
        self.inserts += u64::from(n);
    }

    #[inline]
    fn kernel_run(&mut self, len: u32) {
        self.kernel_runs += 1;
        self.kernel_bytes += u64::from(len);
    }

    #[inline]
    fn chain_done(&mut self, steps: u32) {
        self.probes += u64::from(steps);
        self.chain_hist.record(u64::from(steps));
    }

    #[inline]
    fn literal(&mut self) {
        self.literals += 1;
    }

    #[inline]
    fn literals_n(&mut self, n: u32) {
        self.literals += u64::from(n);
    }

    #[inline]
    fn matched(&mut self, len: u32) {
        self.matches += 1;
        self.match_bytes += u64::from(len);
        self.match_len_hist.record(u64::from(len));
    }

    #[inline]
    fn kernel_select(&mut self, isa: &'static str) {
        match isa {
            "sse2" => self.dispatch_sse2 += 1,
            "avx2" => self.dispatch_avx2 += 1,
            "neon" => self.dispatch_neon += 1,
            _ => self.dispatch_scalar += 1,
        }
    }

    #[inline]
    fn lanes_active(&mut self, lanes: u32) {
        self.lane_occupancy.record(u64::from(lanes));
    }
}

impl TurboCounters {
    /// Input bytes accounted for by the emitted tokens; must equal the
    /// input length (the core observability invariant, enforced by tests).
    pub fn covered_bytes(&self) -> u64 {
        self.literals + self.match_bytes
    }

    /// Input bytes advanced per chain probe (∞-free; 0 when no probes).
    pub fn bytes_per_probe(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.covered_bytes() as f64 / self.probes as f64
        }
    }

    /// Match tokens per emitted token (0 when no tokens).
    pub fn match_ratio(&self) -> f64 {
        let tokens = self.literals + self.matches;
        if tokens == 0 {
            0.0
        } else {
            self.matches as f64 / tokens as f64
        }
    }

    /// Fold another engine's counters into this one (used by the parallel
    /// pipeline to aggregate per-worker engines).
    pub fn merge(&mut self, other: &TurboCounters) {
        self.inserts += other.inserts;
        self.probes += other.probes;
        self.kernel_runs += other.kernel_runs;
        self.kernel_bytes += other.kernel_bytes;
        self.literals += other.literals;
        self.matches += other.matches;
        self.match_bytes += other.match_bytes;
        self.chain_hist.merge(&other.chain_hist);
        self.match_len_hist.merge(&other.match_len_hist);
        self.dispatch_scalar += other.dispatch_scalar;
        self.dispatch_sse2 += other.dispatch_sse2;
        self.dispatch_avx2 += other.dispatch_avx2;
        self.dispatch_neon += other.dispatch_neon;
        self.lane_occupancy.merge(&other.lane_occupancy);
    }

    /// Total engine runs that reported a kernel dispatch.
    pub fn dispatches(&self) -> u64 {
        self.dispatch_scalar + self.dispatch_sse2 + self.dispatch_avx2 + self.dispatch_neon
    }

    /// JSON form for the `telemetry.turbo` report section.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("inserts", self.inserts.into()),
            ("probes", self.probes.into()),
            ("kernel_runs", self.kernel_runs.into()),
            ("kernel_bytes", self.kernel_bytes.into()),
            ("literals", self.literals.into()),
            ("matches", self.matches.into()),
            ("match_bytes", self.match_bytes.into()),
            ("covered_bytes", self.covered_bytes().into()),
            ("bytes_per_probe", self.bytes_per_probe().into()),
            ("match_ratio", self.match_ratio().into()),
            ("chain_len", self.chain_hist.to_json()),
            ("match_len", self.match_len_hist.to_json()),
            (
                "dispatch",
                obj([
                    ("scalar", self.dispatch_scalar.into()),
                    ("sse2", self.dispatch_sse2.into()),
                    ("avx2", self.dispatch_avx2.into()),
                    ("neon", self.dispatch_neon.into()),
                ]),
            ),
            ("lane_occupancy", self.lane_occupancy.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_probe_accumulates() {
        let mut c = TurboCounters::default();
        c.inserted();
        c.inserted_n(3);
        c.kernel_run(12);
        c.chain_done(2);
        c.matched(12);
        c.literal();
        assert_eq!(c.inserts, 4);
        assert_eq!(c.probes, 2, "chain_done accumulates the probe count");
        assert_eq!(c.kernel_runs, 1);
        assert_eq!(c.kernel_bytes, 12);
        assert_eq!(c.covered_bytes(), 13);
        assert!((c.bytes_per_probe() - 6.5).abs() < 1e-12);
        assert!((c.match_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(c.chain_hist.count(), 1);
        assert_eq!(c.match_len_hist.sum(), 12);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = TurboCounters::default();
        a.matched(10);
        let mut b = TurboCounters::default();
        b.literal();
        b.chain_done(1);
        a.merge(&b);
        assert_eq!(a.covered_bytes(), 11);
        assert_eq!(a.probes, 1);
    }

    #[test]
    fn json_section_round_trips() {
        let mut c = TurboCounters::default();
        c.matched(100);
        c.literal();
        c.chain_done(1);
        let parsed = crate::json::parse(&c.to_json().render()).unwrap();
        assert_eq!(parsed.get("covered_bytes").unwrap().as_i64(), Some(101));
        assert_eq!(parsed.get("match_len").unwrap().get("max").unwrap().as_i64(), Some(100));
    }

    #[test]
    fn kernel_dispatch_and_lane_occupancy_accumulate() {
        let mut c = TurboCounters::default();
        c.kernel_select("avx2");
        c.kernel_select("avx2");
        c.kernel_select("scalar");
        c.kernel_select("mystery-isa");
        c.lanes_active(4);
        c.lanes_active(2);
        assert_eq!(c.dispatch_avx2, 2);
        assert_eq!(c.dispatch_scalar, 2, "unknown ISAs count as scalar");
        assert_eq!(c.dispatches(), 4);
        assert_eq!(c.lane_occupancy.count(), 2);
        assert_eq!(c.lane_occupancy.sum(), 6);

        let mut other = TurboCounters::default();
        other.kernel_select("sse2");
        other.lanes_active(3);
        c.merge(&other);
        assert_eq!(c.dispatches(), 5);
        assert_eq!(c.lane_occupancy.sum(), 9);

        let parsed = crate::json::parse(&c.to_json().render()).unwrap();
        let dispatch = parsed.get("dispatch").unwrap();
        assert_eq!(dispatch.get("avx2").unwrap().as_i64(), Some(2));
        assert_eq!(dispatch.get("sse2").unwrap().as_i64(), Some(1));
        assert_eq!(parsed.get("lane_occupancy").unwrap().get("count").unwrap().as_i64(), Some(3));
    }
}
