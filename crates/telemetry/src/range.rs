//! Counters for the LZFC random-access (range-decode) path.
//!
//! The range reader's whole value proposition is *not* doing work: seeking
//! straight to the frames covering a byte range instead of decoding the
//! stream, and serving hot frames from a bounded cache instead of
//! re-inflating them. These counters are the proof — `frames_decoded`
//! versus `frames_in_range` shows the O(frames-in-range) bound holding,
//! and the hit/miss pair shows what the cache is buying. Keeping the type
//! in the dependency-free leaf crate lets the container, CLI and tests
//! share one schema.

use crate::json::{obj, JsonValue};

/// Cumulative counters for one range reader's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeCounters {
    /// `decode_range` calls served.
    pub ranges_served: u64,
    /// Frames that covered the requested ranges (the work ceiling: every
    /// serve touches exactly the covering frames, never the whole stream).
    pub frames_in_range: u64,
    /// Frames actually inflated (cache misses plus verification decodes).
    pub frames_decoded: u64,
    /// Frames served straight from the decoded-frame cache.
    pub cache_hits: u64,
    /// Frames that had to be decoded because the cache lacked them.
    pub cache_misses: u64,
    /// Frames evicted to stay under the cache's byte budget.
    pub cache_evictions: u64,
    /// Uncompressed bytes currently held by the cache.
    pub cache_bytes: u64,
    /// The cache's configured byte budget.
    pub cache_capacity_bytes: u64,
    /// Times the seek index was used to plan a range.
    pub index_hits: u64,
    /// Times planning fell back to a structure scan or salvage because the
    /// index was missing, corrupt, or lying.
    pub index_fallbacks: u64,
}

impl RangeCounters {
    /// Render for `--metrics` output and the JSONL sink.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("ranges_served", self.ranges_served.into()),
            ("frames_in_range", self.frames_in_range.into()),
            ("frames_decoded", self.frames_decoded.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("cache_evictions", self.cache_evictions.into()),
            ("cache_bytes", self.cache_bytes.into()),
            ("cache_capacity_bytes", self.cache_capacity_bytes.into()),
            ("index_hits", self.index_hits.into()),
            ("index_fallbacks", self.index_fallbacks.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_through_the_parser() {
        let c = RangeCounters {
            ranges_served: 3,
            frames_in_range: 7,
            frames_decoded: 5,
            cache_hits: 2,
            cache_misses: 5,
            cache_evictions: 1,
            cache_bytes: 262_144,
            cache_capacity_bytes: 8 << 20,
            index_hits: 3,
            index_fallbacks: 0,
        };
        let parsed = crate::json::parse(&c.to_json().render()).unwrap();
        assert_eq!(parsed.get("frames_in_range").unwrap().as_i64(), Some(7));
        assert_eq!(parsed.get("frames_decoded").unwrap().as_i64(), Some(5));
        assert_eq!(parsed.get("cache_hits").unwrap().as_i64(), Some(2));
        assert_eq!(parsed.get("cache_capacity_bytes").unwrap().as_i64(), Some(8 << 20));
    }
}
