//! Wall-clock span timing with a chrome://tracing-compatible export.
//!
//! The hardware model already exports its FSM occupancy as a VCD waveform;
//! this module is the same idea for host threads. Spans are recorded as
//! Trace Event Format *complete events* (`"ph":"X"`, microsecond
//! timestamps) and serialized by [`trace_events_json`] into a file that
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly: one row
//! per `tid` (worker), one slice per span.

use std::time::Instant;

use crate::json::{obj, JsonValue};

/// Span ID of the root (whole-file) span of a compress or decompress job.
///
/// The causal span scheme threads file→frame→chunk parentage through every
/// trace export as two `args` keys, `"span_id"` and `"parent"` (0 = no
/// parent), so a chrome://tracing view can reconstruct the job as a single
/// tree rather than disjoint per-thread slices:
///
/// * the file span is [`ROOT_SPAN`] (`1`),
/// * frame/chunk `i` is [`frame_span`]`(i)` = `2 + i` (low 32 bits carry
///   the lineage),
/// * per-frame stages (encode, stitch, fault retries, …) are
///   [`stage_span`]`(parent, k)`, which stamps stage `k` into the high 32
///   bits of its parent's ID — unique as long as frame IDs stay below
///   2^32, which the u32 frame counters guarantee.
pub const ROOT_SPAN: u64 = 1;

/// Span ID for frame (or chunk) `index` of a job; child of [`ROOT_SPAN`].
pub const fn frame_span(index: u64) -> u64 {
    2 + index
}

/// Span ID for stage `stage` under `parent` (see [`ROOT_SPAN`] for the
/// scheme). `parent` must be a root or frame span (below 2^32).
pub const fn stage_span(parent: u64, stage: u32) -> u64 {
    parent | ((stage as u64 + 1) << 32)
}

/// The `args` pair carrying a span's identity: `("span_id", id)` and
/// `("parent", parent)`; `parent == 0` marks a root.
pub fn span_args(id: u64, parent: u64) -> Vec<(&'static str, JsonValue)> {
    vec![("span_id", id.into()), ("parent", parent.into())]
}

/// One completed span on some thread's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Slice label (e.g. `"compress chunk 3"`).
    pub name: String,
    /// Category, used by viewers for filtering (e.g. `"compress"`).
    pub cat: &'static str,
    /// Timeline row; 0 is the stitcher/caller, workers are 1-based.
    pub tid: u32,
    /// Start, microseconds since the run epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Free-form arguments shown in the viewer's detail pane.
    pub args: Vec<(&'static str, JsonValue)>,
}

impl TraceEvent {
    /// The event as a Trace Event Format JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut v = obj([
            ("name", self.name.as_str().into()),
            ("cat", self.cat.into()),
            ("ph", "X".into()),
            ("ts", self.ts_us.into()),
            ("dur", self.dur_us.into()),
            ("pid", 1u32.into()),
            ("tid", self.tid.into()),
        ]);
        if !self.args.is_empty() {
            v.push(
                "args",
                JsonValue::Object(
                    self.args.iter().map(|(k, a)| ((*k).to_string(), a.clone())).collect(),
                ),
            );
        }
        v
    }
}

/// Serialize events as a Trace Event Format document
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`).
pub fn trace_events_json(events: &[TraceEvent]) -> String {
    let doc = obj([
        ("traceEvents", JsonValue::Array(events.iter().map(TraceEvent::to_json).collect())),
        ("displayTimeUnit", "ms".into()),
    ]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// A per-thread span recorder sharing one epoch across threads.
///
/// Each thread owns its own `SpanTimer` (no locking on the hot path);
/// the buffers are merged after the parallel section with [`SpanTimer::drain`].
#[derive(Debug)]
pub struct SpanTimer {
    epoch: Instant,
    tid: u32,
    events: Vec<TraceEvent>,
}

impl SpanTimer {
    /// A recorder for timeline row `tid` measuring from `epoch`.
    pub fn new(epoch: Instant, tid: u32) -> Self {
        Self { epoch, tid, events: Vec::new() }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Record a span that started at `start_us` (from [`SpanTimer::now_us`])
    /// and ends now; returns its duration in seconds.
    pub fn complete(
        &mut self,
        name: String,
        cat: &'static str,
        start_us: f64,
        args: Vec<(&'static str, JsonValue)>,
    ) -> f64 {
        let end = self.now_us();
        let dur_us = (end - start_us).max(0.0);
        self.events.push(TraceEvent { name, cat, tid: self.tid, ts_us: start_us, dur_us, args });
        dur_us / 1e6
    }

    /// Time `f`, recording it as a span; returns its value and duration (s).
    pub fn measure<T>(
        &mut self,
        name: String,
        cat: &'static str,
        f: impl FnOnce() -> T,
    ) -> (T, f64) {
        let start = self.now_us();
        let value = f();
        let secs = self.complete(name, cat, start, Vec::new());
        (value, secs)
    }

    /// Take the recorded events.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_the_right_row() {
        let epoch = Instant::now();
        let mut t = SpanTimer::new(epoch, 3);
        let ((), secs) = t.measure("work".into(), "test", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(secs >= 0.002);
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].tid, 3);
        assert!(events[0].dur_us >= 2_000.0);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn trace_document_parses_and_round_trips() {
        let events = vec![
            TraceEvent {
                name: "compress chunk 0".into(),
                cat: "compress",
                tid: 1,
                ts_us: 10.0,
                dur_us: 250.5,
                args: vec![("bytes", 65_536u64.into())],
            },
            TraceEvent {
                name: "encode chunk 0".into(),
                cat: "encode",
                tid: 0,
                ts_us: 260.5,
                dur_us: 40.0,
                args: Vec::new(),
            },
        ];
        let text = trace_events_json(&events);
        let doc = crate::json::parse(text.trim()).unwrap();
        let list = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(list[0].get("tid").unwrap().as_i64(), Some(1));
        assert_eq!(list[0].get("args").unwrap().get("bytes").unwrap().as_i64(), Some(65_536));
        assert_eq!(list[1].get("name").unwrap().as_str(), Some("encode chunk 0"));
    }
}
