//! Power-of-two-bucket histograms for hot-loop distributions.
//!
//! Chain-walk lengths and match lengths span several orders of magnitude;
//! a log2 bucketing keeps recording to a `leading_zeros` plus one add — no
//! allocation, no floating point on the hot path.

use crate::json::JsonValue;

/// Number of log2 buckets: values `>= 2^(BUCKETS-2)` share the last one.
const BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples in `[2^(i-1), 2^i)` for `i >= 1`; bucket 0
/// counts zeros. Also tracks exact count, sum, and max so means stay exact.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty `(bucket_upper_bound_exclusive, count)` rows, low to high.
    /// The bound for bucket `i` is `2^i` (bucket 0 holds exactly the zeros).
    pub fn rows(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }

    /// JSON form: `{count, sum, max, mean, buckets: [{le, n}, ...]}`.
    pub fn to_json(&self) -> JsonValue {
        crate::json::obj([
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            (
                "buckets",
                JsonValue::Array(
                    self.rows()
                        .into_iter()
                        .map(|(le, n)| crate::json::obj([("lt", le.into()), ("n", n.into())]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 7, 8, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1_022);
        assert_eq!(h.max(), 1_000);
        let rows = h.rows();
        // zeros | [1,2) | [2,4) | [4,8) | [8,16) | [512,1024)
        assert_eq!(rows, vec![(0, 1), (2, 2), (4, 2), (8, 1), (16, 1), (1024, 1)]);
        let total: u64 = rows.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count());
    }

    #[test]
    fn bucket_boundaries_are_exact_powers() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(4);
        h.record(8);
        // Each power of two starts a new bucket.
        assert_eq!(h.rows().len(), 4);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.max(), 300);
        assert!((a.mean() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let parsed = crate::json::parse(&h.to_json().render()).unwrap();
        assert_eq!(parsed.get("count").unwrap().as_i64(), Some(100));
        assert_eq!(parsed.get("sum").unwrap().as_i64(), Some(4_950));
        let buckets = parsed.get("buckets").unwrap().as_array().unwrap();
        let n: i64 = buckets.iter().map(|b| b.get("n").unwrap().as_i64().unwrap()).sum();
        assert_eq!(n, 100);
    }
}
