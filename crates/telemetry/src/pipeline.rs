//! Report types for the chunk-parallel pipeline's telemetry.
//!
//! The parallel path is a two-stage software pipeline (workers match,
//! the caller's thread stitches Deflate blocks in chunk order); these
//! types capture where its wall-clock goes: per-worker busy vs idle time,
//! token-buffer freelist traffic, stitcher stall vs encode time, and how
//! long finished chunks sat in the reorder queue.

use crate::json::{obj, JsonValue};
use crate::probe::TurboCounters;
use crate::spans::TraceEvent;

/// One worker thread's utilization over the run.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index (0-based; timeline row `tid` is `worker + 1`).
    pub worker: usize,
    /// Chunks this worker compressed.
    pub chunks: u64,
    /// Input bytes this worker compressed.
    pub input_bytes: u64,
    /// Seconds spent compressing.
    pub busy_s: f64,
    /// Seconds alive but not compressing (queue pops, slot filing, exit).
    pub idle_s: f64,
    /// Token buffers reused from the freelist.
    pub freelist_hits: u64,
    /// Token buffers freshly allocated (freelist empty).
    pub freelist_misses: u64,
}

impl WorkerStats {
    /// Busy fraction of this worker's lifetime (0 when unknown).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_s + self.idle_s;
        if total <= 0.0 {
            0.0
        } else {
            self.busy_s / total
        }
    }

    /// JSON row for the `telemetry.parallel.workers` array.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("worker", self.worker.into()),
            ("chunks", self.chunks.into()),
            ("input_bytes", self.input_bytes.into()),
            ("busy_s", self.busy_s.into()),
            ("idle_s", self.idle_s.into()),
            ("utilization", self.utilization().into()),
            ("freelist_hits", self.freelist_hits.into()),
            ("freelist_misses", self.freelist_misses.into()),
        ])
    }
}

/// The stitcher (reorder + Deflate encode) side of the pipeline.
#[derive(Debug, Clone, Default)]
pub struct StitcherStats {
    /// Seconds blocked waiting for the next in-order chunk.
    pub stall_s: f64,
    /// Seconds spent Deflate-encoding token streams.
    pub encode_s: f64,
    /// Total seconds finished chunks waited in the reorder queue before the
    /// stitcher picked them up (summed across chunks).
    pub queue_wait_s: f64,
    /// Deepest the token-buffer freelist ever got.
    pub freelist_peak: u64,
}

impl StitcherStats {
    /// JSON form for the `telemetry.parallel.stitcher` section.
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("stall_s", self.stall_s.into()),
            ("encode_s", self.encode_s.into()),
            ("queue_wait_s", self.queue_wait_s.into()),
            ("freelist_peak", self.freelist_peak.into()),
        ])
    }
}

/// Everything the parallel pipeline observed during one run.
#[derive(Debug, Clone, Default)]
pub struct PipelineTelemetry {
    /// Wall-clock of the whole parallel section, seconds.
    pub wall_s: f64,
    /// Per-worker utilization, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Stitcher-side accounting.
    pub stitcher: StitcherStats,
    /// Aggregated turbo-engine counters across all workers (empty when the
    /// modelled engine produced the tokens — cycles live in `ChunkReport`).
    pub turbo: TurboCounters,
    /// Trace events for the chrome://tracing export (workers + stitcher).
    pub trace_events: Vec<TraceEvent>,
}

impl PipelineTelemetry {
    /// JSON form for the `telemetry.parallel` report section (trace events
    /// are exported separately via [`crate::spans::trace_events_json`]).
    pub fn to_json(&self) -> JsonValue {
        obj([
            ("wall_s", self.wall_s.into()),
            ("workers", JsonValue::Array(self.workers.iter().map(WorkerStats::to_json).collect())),
            ("stitcher", self.stitcher.to_json()),
            ("turbo", self.turbo.to_json()),
            ("trace_events", self.trace_events.len().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_busy_over_lifetime() {
        let w = WorkerStats { busy_s: 3.0, idle_s: 1.0, ..WorkerStats::default() };
        assert!((w.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(WorkerStats::default().utilization(), 0.0);
    }

    #[test]
    fn sections_render_and_parse() {
        let t = PipelineTelemetry {
            wall_s: 0.5,
            workers: vec![WorkerStats { worker: 0, chunks: 4, ..WorkerStats::default() }],
            stitcher: StitcherStats { stall_s: 0.1, ..StitcherStats::default() },
            ..PipelineTelemetry::default()
        };
        let parsed = crate::json::parse(&t.to_json().render()).unwrap();
        assert_eq!(parsed.get("workers").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(parsed.get("stitcher").unwrap().get("stall_s").unwrap().as_f64(), Some(0.1));
    }
}
