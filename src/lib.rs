//! # lzfpga — a software reproduction of the IPDPS'12 FPGA LZSS compressor
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `lzfpga-sim` | Dual-port BRAM model, clocking, handshake streams, Virtex-5 resources |
//! | [`deflate`] | `lzfpga-deflate` | Deflate fixed/dynamic encoding, full inflate, zlib/gzip containers |
//! | [`lzss`] | `lzfpga-lzss` | Token model, software reference compressor, decoder, CPU cost model |
//! | [`hw`] | `lzfpga-core` | The cycle-accurate hardware compressor model (the paper's contribution) |
//! | [`workloads`] | `lzfpga-workloads` | Wiki/X2E/synthetic data generators |
//! | [`estimator`] | `lzfpga-estimator` | Design-space exploration sweeps, Pareto/budget selection, interactive shell |
//! | [`cam`] | `lzfpga-cam` | Related-work CAM and systolic matcher models |
//! | [`parallel`] | `lzfpga-parallel` | Chunk-parallel multi-engine compression |
//! | [`telemetry`] | `lzfpga-telemetry` | Counters, span timing, JSONL sink, chrome://tracing export |
//! | [`obs`] | `lzfpga-obs` | Metrics registry, span-tree tooling, Prometheus/JSONL exporters, stats aggregation |
//! | [`faults`] | `lzfpga-faults` | Failpoints, failure reports, deterministic stream mutation |
//! | [`container`] | `lzfpga-container` | LZFC crash-safe framed container: salvage decode, checkpointed streaming |
//! | [`server`] | `lzfpga-server` | Fault-contained LZS1 compression daemon: admission, quotas, backpressure, drain |
//!
//! ## Quickstart
//!
//! ```
//! use lzfpga::hw::{compress_to_zlib, HwConfig};
//!
//! let data = lzfpga::workloads::wiki::generate(1, 64 * 1024);
//! let report = compress_to_zlib(&data, &HwConfig::paper_fast());
//! assert_eq!(lzfpga::deflate::zlib_decompress(&report.compressed).unwrap(), data);
//! println!("{:.1} MB/s at 100 MHz, ratio {:.2}", report.mb_per_s(), report.ratio());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Cycle-level FPGA simulation substrate.
pub use lzfpga_sim as sim;

/// Deflate / zlib / gzip format layer.
pub use lzfpga_deflate as deflate;

/// LZSS algorithm layer and software baseline.
pub use lzfpga_lzss as lzss;

/// The cycle-accurate hardware compressor model.
pub use lzfpga_core as hw;

/// Deterministic workload generators.
pub use lzfpga_workloads as workloads;

/// Design-space exploration tooling.
pub use lzfpga_estimator as estimator;

/// The CAM-based alternative matcher (related work \[7\]) for comparison.
pub use lzfpga_cam as cam;

/// Chunk-parallel multi-engine compression (pigz-style scale-out).
pub use lzfpga_parallel as parallel;

/// VHDL-93 generation from a hardware configuration (the THDL++ flow role).
pub use lzfpga_rtlgen as rtlgen;

/// Unified telemetry: counters, spans, JSONL sink, trace-event export.
pub use lzfpga_telemetry as telemetry;

/// Observability: metrics registry, span trees, exporters, stats.
pub use lzfpga_obs as obs;

/// Fault injection: failpoints, failure reports, stream mutation.
pub use lzfpga_faults as faults;

/// LZFC framed container: crash-safe streaming, resync/salvage, resume.
pub use lzfpga_container as container;

/// Fault-contained multi-stream compression daemon and its LZS1 client.
pub use lzfpga_server as server;
